package zone

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"github.com/extended-dns-errors/edelab/internal/dnssec"
	"github.com/extended-dns-errors/edelab/internal/dnswire"
)

// This file provides the mutation primitives the testbed composes into the
// paper's Table 3 misconfigurations. Every mutator operates on an already
// signed zone and leaves it in the precise broken state the corresponding
// test subdomain exhibits.

// CorruptSigs flips bytes in the signatures covering (name, t). When tag is
// non-nil only signatures made by that key tag are corrupted. It reports how
// many signatures were touched.
func (z *Zone) CorruptSigs(name dnswire.Name, t dnswire.Type, tag *uint16) int {
	k := rrKey{name, t}
	n := 0
	for i, rr := range z.sigs[k] {
		sig := rr.Data.(dnswire.RRSIG)
		if tag != nil && sig.KeyTag != *tag {
			continue
		}
		sig.Signature = append([]byte(nil), sig.Signature...)
		for j := 0; j < len(sig.Signature); j += 7 {
			sig.Signature[j] ^= 0x5A
		}
		rr.Data = sig
		z.sigs[k][i] = rr
		n++
	}
	return n
}

// RemoveSigsByTag deletes signatures covering (name, t) made by key tag.
func (z *Zone) RemoveSigsByTag(name dnswire.Name, t dnswire.Type, tag uint16) int {
	k := rrKey{name, t}
	kept := z.sigs[k][:0]
	n := 0
	for _, rr := range z.sigs[k] {
		if rr.Data.(dnswire.RRSIG).KeyTag == tag {
			n++
			continue
		}
		kept = append(kept, rr)
	}
	if len(kept) == 0 {
		delete(z.sigs, k)
	} else {
		z.sigs[k] = kept
	}
	return n
}

// RemoveAllSigs strips every RRSIG in the zone (Table 3: rrsig-no-all).
func (z *Zone) RemoveAllSigs() {
	z.sigs = make(map[rrKey][]dnswire.RR)
}

// ResignAllWithWindow re-signs every authoritative RRset using the given
// validity window (Table 3: rrsig-exp-all, rrsig-not-yet-all,
// rrsig-exp-before-all).
func (z *Zone) ResignAllWithWindow(inception, expiration uint32) error {
	z.Inception, z.Expiration = inception, expiration
	return z.resignAll()
}

// MutateDNSKey rewrites published DNSKEYs matched by sel and re-signs the
// DNSKEY RRset with the given keys (pass the zone's real keys to model a
// server that re-signed after the change, or none to leave stale
// signatures).
func (z *Zone) MutateDNSKey(sel func(dnswire.DNSKEY) bool, fn func(*dnswire.DNSKEY), resignWith ...*dnssec.KeyPair) (int, error) {
	set := z.RRset(z.Origin, dnswire.TypeDNSKEY)
	n := 0
	out := make([]dnswire.RR, 0, len(set))
	for _, rr := range set {
		key := rr.Data.(dnswire.DNSKEY)
		if sel(key) {
			key.PublicKey = append([]byte(nil), key.PublicKey...)
			fn(&key)
			rr.Data = key
			n++
		}
		out = append(out, rr)
	}
	z.SetRRset(z.Origin, dnswire.TypeDNSKEY, out)
	if len(resignWith) > 0 {
		if err := z.ResignRRset(z.Origin, dnswire.TypeDNSKEY, z.Inception, z.Expiration, resignWith...); err != nil {
			return n, err
		}
	}
	return n, nil
}

// RemoveDNSKey deletes published DNSKEYs matched by sel and re-signs the
// remaining set with the given keys.
func (z *Zone) RemoveDNSKey(sel func(dnswire.DNSKEY) bool, resignWith ...*dnssec.KeyPair) (int, error) {
	set := z.RRset(z.Origin, dnswire.TypeDNSKEY)
	out := make([]dnswire.RR, 0, len(set))
	n := 0
	for _, rr := range set {
		if sel(rr.Data.(dnswire.DNSKEY)) {
			n++
			continue
		}
		out = append(out, rr)
	}
	z.SetRRset(z.Origin, dnswire.TypeDNSKEY, out)
	if len(resignWith) > 0 {
		if err := z.ResignRRset(z.Origin, dnswire.TypeDNSKEY, z.Inception, z.Expiration, resignWith...); err != nil {
			return n, err
		}
	}
	return n, nil
}

// SelKSK / SelZSK select published keys by their SEP flag.
func SelKSK(k dnswire.DNSKEY) bool { return k.IsSEP() }

// SelZSK selects zone keys without the SEP flag.
func SelZSK(k dnswire.DNSKEY) bool { return k.IsZoneKey() && !k.IsSEP() }

// GarbleNSEC3Owners rewrites every NSEC3 owner hash to an unrelated value
// and re-signs the records, modelling bad-nsec3-hash: the records are
// cryptographically valid but prove nothing.
func (z *Zone) GarbleNSEC3Owners() error {
	return z.rewriteNSEC3(func(i int, e *nsec3Entry, rec *dnswire.NSEC3) {
		e.hash = garbleHash(e.hash, uint32(i))
		e.owner = z.Origin.Child(dnswire.Base32HexNoPad(e.hash))
	})
}

// GarbleNSEC3Next rewrites every NSEC3 next-hash to a value immediately
// after the owner hash, so no record covers anything (bad-nsec3-next).
func (z *Zone) GarbleNSEC3Next() error {
	return z.rewriteNSEC3(func(i int, e *nsec3Entry, rec *dnswire.NSEC3) {
		next := append([]byte(nil), e.hash...)
		next[len(next)-1]++
		rec.NextHashed = next
	})
}

// SetNSEC3Salt rewrites the salt field of the served NSEC3PARAM and of every
// NSEC3 record without recomputing owner hashes (bad-nsec3param-salt): the
// published parameters no longer reproduce the chain's hashes, and
// validators see inconsistent salt across the denial records they receive.
func (z *Zone) SetNSEC3Salt(salt []byte) error {
	z.NSEC3Params.Salt = salt
	z.SetRRset(z.Origin, dnswire.TypeNSEC3PARAM, []dnswire.RR{{
		Name: z.Origin, Class: dnswire.ClassIN, TTL: z.DefaultTTL, Data: z.NSEC3Params,
	}})
	if err := z.ResignRRset(z.Origin, dnswire.TypeNSEC3PARAM, z.Inception, z.Expiration, z.ZSKs[0]); err != nil {
		return err
	}
	// Rewrite the salt on every other NSEC3 record in the chain, leaving the
	// first one intact so responses mix two salts — the inconsistency a
	// validator can observe.
	first := true
	return z.rewriteNSEC3(func(i int, e *nsec3Entry, rec *dnswire.NSEC3) {
		if first {
			first = false
			return
		}
		rec.Salt = append([]byte(nil), salt...)
	})
}

// rewriteNSEC3 applies fn to each chain entry and its record, then rewrites
// and re-signs the NSEC3 RRsets.
func (z *Zone) rewriteNSEC3(fn func(i int, e *nsec3Entry, rec *dnswire.NSEC3)) error {
	if len(z.ZSKs) == 0 {
		return fmt.Errorf("zone %s: not signed", z.Origin)
	}
	type pending struct {
		entry nsec3Entry
		rec   dnswire.NSEC3
	}
	out := make([]pending, 0, len(z.nsec3Chain))
	for i, e := range z.nsec3Chain {
		set := z.RRset(e.owner, dnswire.TypeNSEC3)
		if len(set) == 0 {
			continue
		}
		rec := set[0].Data.(dnswire.NSEC3)
		rec.Salt = append([]byte(nil), rec.Salt...)
		rec.NextHashed = append([]byte(nil), rec.NextHashed...)
		z.RemoveRRset(e.owner, dnswire.TypeNSEC3)
		fn(i, &e, &rec)
		out = append(out, pending{entry: e, rec: rec})
	}
	z.nsec3Chain = z.nsec3Chain[:0]
	for _, p := range out {
		z.nsec3Chain = append(z.nsec3Chain, p.entry)
		z.SetRRset(p.entry.owner, dnswire.TypeNSEC3, []dnswire.RR{{
			Name: p.entry.owner, Class: dnswire.ClassIN, TTL: z.DefaultTTL, Data: p.rec,
		}})
		if err := z.ResignRRset(p.entry.owner, dnswire.TypeNSEC3, z.Inception, z.Expiration, z.ZSKs[0]); err != nil {
			return err
		}
	}
	sortChain(z.nsec3Chain)
	return nil
}

func sortChain(entries []nsec3Entry) { sortEntries(entries) }

// CorruptNSEC3Sigs corrupts the RRSIGs over every NSEC3 record
// (bad-nsec3-rrsig).
func (z *Zone) CorruptNSEC3Sigs() int {
	n := 0
	for _, e := range z.nsec3Chain {
		n += z.CorruptSigs(e.owner, dnswire.TypeNSEC3, nil)
	}
	return n
}

// RemoveNSEC3Sigs strips the RRSIGs over every NSEC3 record
// (nsec3-rrsig-missing).
func (z *Zone) RemoveNSEC3Sigs() {
	for _, e := range z.nsec3Chain {
		z.RemoveSigs(e.owner, dnswire.TypeNSEC3)
	}
}

// RemoveNSEC3Records deletes the NSEC3 RRsets; with DenialMode left at
// DenialOmitNSEC3 the server then serves signed negatives without proof
// (nsec3-missing).
func (z *Zone) RemoveNSEC3Records() {
	for _, e := range z.nsec3Chain {
		z.RemoveRRset(e.owner, dnswire.TypeNSEC3)
	}
	z.nsec3Chain = nil
}

// RemoveNSEC3PARAM deletes the NSEC3PARAM record (nsec3param-missing /
// no-nsec3param-nsec3); callers set the matching DenialMode.
func (z *Zone) RemoveNSEC3PARAM() {
	z.RemoveRRset(z.Origin, dnswire.TypeNSEC3PARAM)
}

// garbleHash derives an unrelated hash of the same length.
func garbleHash(h []byte, seed uint32) []byte {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], seed^0xDEADBEEF)
	sum := sha256.Sum256(append(buf[:], h...))
	out := make([]byte, len(h))
	copy(out, sum[:])
	return out
}
