package zone

import (
	"bufio"
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"

	"github.com/extended-dns-errors/edelab/internal/dnswire"
)

// ParseMaster reads a zone in the master-file dialect Master emits
// ($ORIGIN/$TTL directives followed by one record per line) and rebuilds a
// servable Zone, including its denial index when NSEC/NSEC3 records are
// present. Together with Master it round-trips the testbed artifacts the
// paper publishes per misconfiguration.
func ParseMaster(r io.Reader) (*Zone, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)

	var z *Zone
	var origin dnswire.Name
	ttl := uint32(300)
	lineNo := 0

	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		fields, err := splitMasterFields(line)
		if err != nil {
			return nil, fmt.Errorf("zone: line %d: %w", lineNo, err)
		}
		switch fields[0] {
		case "$ORIGIN":
			if len(fields) != 2 {
				return nil, fmt.Errorf("zone: line %d: $ORIGIN needs a name", lineNo)
			}
			if origin, err = dnswire.NewName(fields[1]); err != nil {
				return nil, fmt.Errorf("zone: line %d: %w", lineNo, err)
			}
			continue
		case "$TTL":
			if len(fields) != 2 {
				return nil, fmt.Errorf("zone: line %d: $TTL needs a value", lineNo)
			}
			v, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("zone: line %d: %w", lineNo, err)
			}
			ttl = uint32(v)
			continue
		}
		if origin == "" {
			return nil, fmt.Errorf("zone: line %d: record before $ORIGIN", lineNo)
		}
		if z == nil {
			z = New(origin, ttl)
			z.RemoveRRset(origin, dnswire.TypeSOA) // replaced by the parsed SOA
		}
		rr, err := parseRecordLine(fields)
		if err != nil {
			return nil, fmt.Errorf("zone: line %d: %w", lineNo, err)
		}
		z.Add(rr)
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	if z == nil {
		return nil, fmt.Errorf("zone: no records")
	}
	z.RebuildDenialIndex()
	return z, nil
}

// splitMasterFields splits on whitespace, honouring double quotes (TXT).
func splitMasterFields(line string) ([]string, error) {
	var fields []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			fields = append(fields, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case inQuote && c == '\\' && i+1 < len(line):
			// Keep escape sequences (including \") intact for Unquote.
			cur.WriteByte(c)
			i++
			cur.WriteByte(line[i])
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case (c == ' ' || c == '\t') && !inQuote:
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("unterminated quote")
	}
	flush()
	if len(fields) == 0 {
		return nil, fmt.Errorf("empty record")
	}
	return fields, nil
}

// parseRecordLine decodes "owner ttl class type rdata...".
func parseRecordLine(fields []string) (dnswire.RR, error) {
	if len(fields) < 4 {
		return dnswire.RR{}, fmt.Errorf("short record %q", strings.Join(fields, " "))
	}
	owner, err := dnswire.NewName(fields[0])
	if err != nil {
		return dnswire.RR{}, err
	}
	ttl64, err := strconv.ParseUint(fields[1], 10, 32)
	if err != nil {
		return dnswire.RR{}, fmt.Errorf("bad TTL %q", fields[1])
	}
	if fields[2] != "IN" {
		return dnswire.RR{}, fmt.Errorf("unsupported class %q", fields[2])
	}
	data, err := parseRData(fields[3], fields[4:])
	if err != nil {
		return dnswire.RR{}, err
	}
	return dnswire.RR{Name: owner, Class: dnswire.ClassIN, TTL: uint32(ttl64), Data: data}, nil
}

func parseRData(typ string, f []string) (dnswire.RData, error) {
	name := func(i int) (dnswire.Name, error) { return dnswire.NewName(f[i]) }
	u8 := func(i int) (uint8, error) {
		v, err := strconv.ParseUint(f[i], 10, 8)
		return uint8(v), err
	}
	u16 := func(i int) (uint16, error) {
		v, err := strconv.ParseUint(f[i], 10, 16)
		return uint16(v), err
	}
	u32 := func(i int) (uint32, error) {
		v, err := strconv.ParseUint(f[i], 10, 32)
		return uint32(v), err
	}
	need := func(n int) error {
		if len(f) < n {
			return fmt.Errorf("%s: want %d rdata fields, have %d", typ, n, len(f))
		}
		return nil
	}

	switch typ {
	case "A":
		if err := need(1); err != nil {
			return nil, err
		}
		addr, err := netip.ParseAddr(f[0])
		if err != nil || !addr.Is4() {
			return nil, fmt.Errorf("bad A address %q", f[0])
		}
		return dnswire.A{Addr: addr}, nil
	case "AAAA":
		if err := need(1); err != nil {
			return nil, err
		}
		addr, err := netip.ParseAddr(f[0])
		if err != nil || addr.Is4() {
			return nil, fmt.Errorf("bad AAAA address %q", f[0])
		}
		return dnswire.AAAA{Addr: addr}, nil
	case "NS":
		if err := need(1); err != nil {
			return nil, err
		}
		h, err := name(0)
		return dnswire.NS{Host: h}, err
	case "CNAME":
		if err := need(1); err != nil {
			return nil, err
		}
		h, err := name(0)
		return dnswire.CNAME{Target: h}, err
	case "PTR":
		if err := need(1); err != nil {
			return nil, err
		}
		h, err := name(0)
		return dnswire.PTR{Target: h}, err
	case "MX":
		if err := need(2); err != nil {
			return nil, err
		}
		pref, err := u16(0)
		if err != nil {
			return nil, err
		}
		h, err := name(1)
		return dnswire.MX{Preference: pref, Host: h}, err
	case "TXT":
		var strs []string
		for _, q := range f {
			unq, err := strconv.Unquote(q)
			if err != nil {
				return nil, fmt.Errorf("bad TXT string %q: %w", q, err)
			}
			strs = append(strs, unq)
		}
		return dnswire.TXT{Strings: strs}, nil
	case "SOA":
		if err := need(7); err != nil {
			return nil, err
		}
		mname, err := name(0)
		if err != nil {
			return nil, err
		}
		rname, err := name(1)
		if err != nil {
			return nil, err
		}
		var nums [5]uint32
		for i := range nums {
			if nums[i], err = u32(2 + i); err != nil {
				return nil, err
			}
		}
		return dnswire.SOA{MName: mname, RName: rname, Serial: nums[0],
			Refresh: nums[1], Retry: nums[2], Expire: nums[3], Minimum: nums[4]}, nil
	case "DS":
		if err := need(4); err != nil {
			return nil, err
		}
		tag, err := u16(0)
		if err != nil {
			return nil, err
		}
		alg, err := u8(1)
		if err != nil {
			return nil, err
		}
		dt, err := u8(2)
		if err != nil {
			return nil, err
		}
		digest, err := hex.DecodeString(strings.ToLower(f[3]))
		if err != nil {
			return nil, err
		}
		return dnswire.DS{KeyTag: tag, Algorithm: alg, DigestType: dt, Digest: digest}, nil
	case "DNSKEY":
		if err := need(4); err != nil {
			return nil, err
		}
		flags, err := u16(0)
		if err != nil {
			return nil, err
		}
		proto, err := u8(1)
		if err != nil {
			return nil, err
		}
		alg, err := u8(2)
		if err != nil {
			return nil, err
		}
		key, err := base64.StdEncoding.DecodeString(strings.Join(f[3:], ""))
		if err != nil {
			return nil, err
		}
		return dnswire.DNSKEY{Flags: flags, Protocol: proto, Algorithm: alg, PublicKey: key}, nil
	case "RRSIG":
		if err := need(9); err != nil {
			return nil, err
		}
		covered, ok := typeByName(f[0])
		if !ok {
			return nil, fmt.Errorf("bad covered type %q", f[0])
		}
		alg, err := u8(1)
		if err != nil {
			return nil, err
		}
		labels, err := u8(2)
		if err != nil {
			return nil, err
		}
		origTTL, err := u32(3)
		if err != nil {
			return nil, err
		}
		exp, err := u32(4)
		if err != nil {
			return nil, err
		}
		inc, err := u32(5)
		if err != nil {
			return nil, err
		}
		tag, err := u16(6)
		if err != nil {
			return nil, err
		}
		signer, err := name(7)
		if err != nil {
			return nil, err
		}
		sig, err := base64.StdEncoding.DecodeString(strings.Join(f[8:], ""))
		if err != nil {
			return nil, err
		}
		return dnswire.RRSIG{TypeCovered: covered, Algorithm: alg, Labels: labels,
			OriginalTTL: origTTL, Expiration: exp, Inception: inc, KeyTag: tag,
			SignerName: signer, Signature: sig}, nil
	case "NSEC":
		if err := need(1); err != nil {
			return nil, err
		}
		next, err := name(0)
		if err != nil {
			return nil, err
		}
		types, err := typeList(f[1:])
		if err != nil {
			return nil, err
		}
		return dnswire.NSEC{NextName: next, Types: types}, nil
	case "NSEC3":
		if err := need(5); err != nil {
			return nil, err
		}
		alg, err := u8(0)
		if err != nil {
			return nil, err
		}
		flags, err := u8(1)
		if err != nil {
			return nil, err
		}
		iter, err := u16(2)
		if err != nil {
			return nil, err
		}
		salt, err := parseSalt(f[3])
		if err != nil {
			return nil, err
		}
		next, err := decodeBase32Hex(f[4])
		if err != nil {
			return nil, err
		}
		types, err := typeList(f[5:])
		if err != nil {
			return nil, err
		}
		return dnswire.NSEC3{HashAlg: alg, Flags: flags, Iterations: iter,
			Salt: salt, NextHashed: next, Types: types}, nil
	case "NSEC3PARAM":
		if err := need(4); err != nil {
			return nil, err
		}
		alg, err := u8(0)
		if err != nil {
			return nil, err
		}
		flags, err := u8(1)
		if err != nil {
			return nil, err
		}
		iter, err := u16(2)
		if err != nil {
			return nil, err
		}
		salt, err := parseSalt(f[3])
		if err != nil {
			return nil, err
		}
		return dnswire.NSEC3PARAM{HashAlg: alg, Flags: flags, Iterations: iter, Salt: salt}, nil
	default:
		return nil, fmt.Errorf("unsupported record type %q", typ)
	}
}

func parseSalt(s string) ([]byte, error) {
	if s == "-" {
		return nil, nil
	}
	return hex.DecodeString(strings.ToLower(s))
}

func typeList(fields []string) ([]dnswire.Type, error) {
	var out []dnswire.Type
	for _, f := range fields {
		t, ok := typeByName(f)
		if !ok {
			return nil, fmt.Errorf("unknown type %q in bitmap", f)
		}
		out = append(out, t)
	}
	return out, nil
}

func typeByName(s string) (dnswire.Type, bool) {
	switch s {
	case "A":
		return dnswire.TypeA, true
	case "NS":
		return dnswire.TypeNS, true
	case "CNAME":
		return dnswire.TypeCNAME, true
	case "SOA":
		return dnswire.TypeSOA, true
	case "PTR":
		return dnswire.TypePTR, true
	case "MX":
		return dnswire.TypeMX, true
	case "TXT":
		return dnswire.TypeTXT, true
	case "AAAA":
		return dnswire.TypeAAAA, true
	case "DS":
		return dnswire.TypeDS, true
	case "RRSIG":
		return dnswire.TypeRRSIG, true
	case "NSEC":
		return dnswire.TypeNSEC, true
	case "DNSKEY":
		return dnswire.TypeDNSKEY, true
	case "NSEC3":
		return dnswire.TypeNSEC3, true
	case "NSEC3PARAM":
		return dnswire.TypeNSEC3PARAM, true
	}
	if strings.HasPrefix(s, "TYPE") {
		v, err := strconv.ParseUint(s[4:], 10, 16)
		if err == nil {
			return dnswire.Type(v), true
		}
	}
	return 0, false
}

func decodeBase32Hex(s string) ([]byte, error) {
	var out []byte
	var acc, bits uint
	for i := 0; i < len(s); i++ {
		c := s[i]
		var v uint
		switch {
		case c >= '0' && c <= '9':
			v = uint(c - '0')
		case c >= 'a' && c <= 'v':
			v = uint(c-'a') + 10
		case c >= 'A' && c <= 'V':
			v = uint(c-'A') + 10
		default:
			return nil, fmt.Errorf("bad base32hex %q", s)
		}
		acc = acc<<5 | v
		bits += 5
		if bits >= 8 {
			bits -= 8
			out = append(out, byte(acc>>bits))
		}
	}
	return out, nil
}

// RebuildDenialIndex reconstructs the NSEC3 or NSEC serving index from the
// zone's stored records (after ParseMaster, or after manual record edits).
// It also marks the zone signed when RRSIGs are present.
func (z *Zone) RebuildDenialIndex() {
	z.nsec3Chain = nil
	z.nsecChain = nil
	for k := range z.rrsets {
		switch k.typ {
		case dnswire.TypeNSEC3:
			labels := k.name.Labels()
			if len(labels) == 0 {
				continue
			}
			hash, err := decodeBase32Hex(labels[0])
			if err != nil {
				continue
			}
			z.nsec3Chain = append(z.nsec3Chain, nsec3Entry{hash: hash, owner: k.name})
		case dnswire.TypeNSEC:
			z.nsecChain = append(z.nsecChain, k.name)
		case dnswire.TypeNSEC3PARAM:
			if set := z.rrsets[k]; len(set) > 0 {
				z.NSEC3Params = set[0].Data.(dnswire.NSEC3PARAM)
			}
		}
	}
	sortEntries(z.nsec3Chain)
	sortNames(z.nsecChain)
	z.nsecMode = len(z.nsecChain) > 0 && len(z.nsec3Chain) == 0
	z.signed = len(z.sigs) > 0
}

func sortNames(names []dnswire.Name) {
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j].Compare(names[j-1]) < 0; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
}
