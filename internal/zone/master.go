package zone

import (
	"fmt"
	"sort"
	"strings"

	"github.com/extended-dns-errors/edelab/internal/dnswire"
)

// Master renders the zone in RFC 1035 master-file presentation format:
// $ORIGIN and $TTL directives followed by every RRset (and its RRSIGs) in
// canonical name order, SOA first. The output round-trips through standard
// tooling (named-checkzone, ldns-read-zone) and is what the paper's
// published testbed instructions distribute for each misconfiguration.
func (z *Zone) Master() string {
	var b strings.Builder
	fmt.Fprintf(&b, "$ORIGIN %s\n$TTL %d\n", z.Origin, z.DefaultTTL)

	names := z.Names()
	// SOA first at the apex, per convention.
	if soa, ok := z.SOA(); ok {
		writeRR(&b, soa)
		for _, sig := range z.Sigs(z.Origin, dnswire.TypeSOA) {
			writeRR(&b, sig)
		}
	}
	for _, name := range names {
		types := z.typesAt(name)
		for _, t := range types {
			if name == z.Origin && t == dnswire.TypeSOA {
				continue
			}
			for _, rr := range z.RRset(name, t) {
				writeRR(&b, rr)
			}
			for _, sig := range z.Sigs(name, t) {
				writeRR(&b, sig)
			}
		}
	}
	return b.String()
}

// typesAt returns the types present at name in stable numeric order.
func (z *Zone) typesAt(name dnswire.Name) []dnswire.Type {
	var out []dnswire.Type
	for k := range z.rrsets {
		if k.name == name {
			out = append(out, k.typ)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func writeRR(b *strings.Builder, rr dnswire.RR) {
	fmt.Fprintf(b, "%-40s %6d %s %-10s %s\n", rr.Name, rr.TTL, rr.Class, rr.Type(), rr.Data)
}

// Stats summarizes a zone for reports: record counts by type.
func (z *Zone) Stats() map[dnswire.Type]int {
	out := make(map[dnswire.Type]int)
	for k, rrs := range z.rrsets {
		out[k.typ] += len(rrs)
	}
	for _, sigs := range z.sigs {
		out[dnswire.TypeRRSIG] += len(sigs)
	}
	return out
}
