package zone

import (
	"strings"
	"testing"

	"github.com/extended-dns-errors/edelab/internal/dnswire"
)

func TestMasterFileFormat(t *testing.T) {
	z := signedZone(t)
	out := z.Master()

	if !strings.HasPrefix(out, "$ORIGIN example.com.\n$TTL 300\n") {
		t.Errorf("missing directives:\n%s", out[:80])
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// SOA must be the first record line (after the two directives).
	if !strings.Contains(lines[2], "SOA") {
		t.Errorf("first record is not SOA: %q", lines[2])
	}
	for _, want := range []string{"DNSKEY", "RRSIG", "NSEC3PARAM", "NSEC3", "NS", "A"} {
		if !strings.Contains(out, want) {
			t.Errorf("master file missing %s records", want)
		}
	}
	// Every record line must carry the IN class.
	for _, l := range lines[2:] {
		if !strings.Contains(l, " IN ") {
			t.Errorf("line without class: %q", l)
		}
	}
}

func TestMasterReflectsMutations(t *testing.T) {
	// Count actual RRSIG record lines (the NSEC3 type bitmaps also contain
	// the literal "RRSIG", so match the type column).
	countSigLines := func(out string) int {
		n := 0
		for _, l := range strings.Split(out, "\n") {
			fields := strings.Fields(l)
			if len(fields) > 3 && fields[3] == "RRSIG" {
				n++
			}
		}
		return n
	}
	z := signedZone(t)
	before := countSigLines(z.Master())
	z.RemoveAllSigs()
	after := countSigLines(z.Master())
	if after != 0 || before == 0 {
		t.Errorf("RRSIG lines before=%d after=%d", before, after)
	}
}

func TestZoneStats(t *testing.T) {
	z := signedZone(t)
	stats := z.Stats()
	if stats[dnswire.TypeSOA] != 1 {
		t.Errorf("SOA count = %d", stats[dnswire.TypeSOA])
	}
	if stats[dnswire.TypeDNSKEY] != 2 {
		t.Errorf("DNSKEY count = %d", stats[dnswire.TypeDNSKEY])
	}
	if stats[dnswire.TypeRRSIG] == 0 {
		t.Error("no RRSIGs counted")
	}
	if stats[dnswire.TypeNSEC3] == 0 {
		t.Error("no NSEC3 chain counted")
	}
}
