// Package zone models authoritative DNS zones: RRset storage, delegations
// with glue, DNSSEC signing (keys, RRSIGs, NSEC3 chain), query answering
// with authenticated denial, and — the testbed's raison d'être — mutators
// implementing every misconfiguration of the paper's Table 3.
package zone

import (
	"fmt"
	"net/netip"
	"sort"

	"github.com/extended-dns-errors/edelab/internal/dnssec"
	"github.com/extended-dns-errors/edelab/internal/dnswire"
)

// rrKey addresses one RRset.
type rrKey struct {
	name dnswire.Name
	typ  dnswire.Type
}

// DenialMode selects how the serving side constructs negative responses.
// Normal is RFC 5155 behaviour; the degraded modes model the differently
// broken servers behind the paper's NSEC3 test group (see testbed package).
type DenialMode int

// Denial modes.
const (
	// DenialNormal attaches a full NSEC3 closest-encloser proof.
	DenialNormal DenialMode = iota
	// DenialOmitNSEC3 serves signed negative responses without any NSEC3
	// records (zone lost its NSEC3 RRsets; nsec3-missing).
	DenialOmitNSEC3
	// DenialUnsignedSOA serves negative responses with an unsigned SOA and
	// no NSEC3 (server cannot construct denial without NSEC3PARAM;
	// nsec3param-missing).
	DenialUnsignedSOA
	// DenialBare serves entirely empty negative responses (zone stripped of
	// both NSEC3 and NSEC3PARAM; no-nsec3param-nsec3).
	DenialBare
	// DenialFullChain attaches every NSEC3 record the zone has instead of a
	// targeted proof — the fallback of a server whose NSEC3PARAM no longer
	// matches its chain and that cannot select records by hash
	// (bad-nsec3param-salt).
	DenialFullChain
)

// Zone is one authoritative zone. It is not safe for concurrent mutation;
// servers treat a finished zone as read-only.
type Zone struct {
	Origin     dnswire.Name
	DefaultTTL uint32

	rrsets map[rrKey][]dnswire.RR
	// sigs holds RRSIGs indexed by the (owner, covered-type) they cover.
	sigs        map[rrKey][]dnswire.RR
	delegations map[dnswire.Name]bool

	// Signing state. KSKs/ZSKs stay available after signing so that the
	// Table 3 mutators can selectively re-sign.
	KSKs []*dnssec.KeyPair
	ZSKs []*dnssec.KeyPair

	NSEC3Params dnswire.NSEC3PARAM
	nsec3Chain  []nsec3Entry // sorted by hash
	// nsecChain holds the canonical owner-name order when the zone uses
	// NSEC instead of NSEC3 denial.
	nsecChain []dnswire.Name
	nsecMode  bool
	signed    bool

	Inception, Expiration uint32

	// DenialMode is consumed by the authoritative server.
	DenialMode DenialMode
}

type nsec3Entry struct {
	hash  []byte
	owner dnswire.Name // hashed owner name (label.origin)
}

// New creates an empty zone rooted at origin with an SOA record.
func New(origin dnswire.Name, ttl uint32) *Zone {
	z := &Zone{
		Origin:      origin,
		DefaultTTL:  ttl,
		rrsets:      make(map[rrKey][]dnswire.RR),
		sigs:        make(map[rrKey][]dnswire.RR),
		delegations: make(map[dnswire.Name]bool),
	}
	z.Add(dnswire.RR{
		Name: origin, Class: dnswire.ClassIN, TTL: ttl,
		Data: dnswire.SOA{
			MName:   origin.Child("ns1"),
			RName:   origin.Child("hostmaster"),
			Serial:  2023051500,
			Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300,
		},
	})
	return z
}

// Add inserts rr into the zone.
func (z *Zone) Add(rr dnswire.RR) {
	if sig, ok := rr.Data.(dnswire.RRSIG); ok {
		k := rrKey{rr.Name, sig.TypeCovered}
		z.sigs[k] = append(z.sigs[k], rr)
		return
	}
	k := rrKey{rr.Name, rr.Type()}
	z.rrsets[k] = append(z.rrsets[k], rr)
	if rr.Type() == dnswire.TypeNS && rr.Name != z.Origin {
		z.delegations[rr.Name] = true
	}
}

// RRset returns the records of type t at name (no RRSIGs).
func (z *Zone) RRset(name dnswire.Name, t dnswire.Type) []dnswire.RR {
	return z.rrsets[rrKey{name, t}]
}

// Sigs returns the RRSIGs covering the RRset of type t at name.
func (z *Zone) Sigs(name dnswire.Name, t dnswire.Type) []dnswire.RR {
	return z.sigs[rrKey{name, t}]
}

// SetRRset replaces the RRset of type t at name.
func (z *Zone) SetRRset(name dnswire.Name, t dnswire.Type, rrs []dnswire.RR) {
	k := rrKey{name, t}
	if len(rrs) == 0 {
		delete(z.rrsets, k)
		return
	}
	z.rrsets[k] = rrs
}

// RemoveRRset deletes the RRset and its signatures.
func (z *Zone) RemoveRRset(name dnswire.Name, t dnswire.Type) {
	delete(z.rrsets, rrKey{name, t})
	delete(z.sigs, rrKey{name, t})
}

// RemoveSigs deletes just the RRSIGs covering (name, t).
func (z *Zone) RemoveSigs(name dnswire.Name, t dnswire.Type) {
	delete(z.sigs, rrKey{name, t})
}

// HasName reports whether any RRset exists at name.
func (z *Zone) HasName(name dnswire.Name) bool {
	for k := range z.rrsets {
		if k.name == name {
			return true
		}
	}
	return false
}

// Names returns every owner name in the zone, sorted canonically.
func (z *Zone) Names() []dnswire.Name {
	seen := make(map[dnswire.Name]bool)
	for k := range z.rrsets {
		seen[k.name] = true
	}
	out := make([]dnswire.Name, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// SOA returns the zone's SOA record.
func (z *Zone) SOA() (dnswire.RR, bool) {
	set := z.RRset(z.Origin, dnswire.TypeSOA)
	if len(set) == 0 {
		return dnswire.RR{}, false
	}
	return set[0], true
}

// AddNS registers host as an apex nameserver with optional glue addresses.
func (z *Zone) AddNS(host dnswire.Name, addrs ...netip.Addr) {
	z.Add(dnswire.RR{Name: z.Origin, Class: dnswire.ClassIN, TTL: z.DefaultTTL,
		Data: dnswire.NS{Host: host}})
	z.addGlue(host, addrs)
}

// AddDelegation delegates child to the given nameserver hosts, publishing
// glue for any host under the zone.
func (z *Zone) AddDelegation(child dnswire.Name, hosts map[dnswire.Name][]netip.Addr) {
	for host, addrs := range hosts {
		z.Add(dnswire.RR{Name: child, Class: dnswire.ClassIN, TTL: z.DefaultTTL,
			Data: dnswire.NS{Host: host}})
		z.addGlue(host, addrs)
	}
}

// AddDS publishes a signed-delegation DS set for child.
func (z *Zone) AddDS(child dnswire.Name, dsSet ...dnswire.DS) {
	for _, ds := range dsSet {
		z.Add(dnswire.RR{Name: child, Class: dnswire.ClassIN, TTL: z.DefaultTTL, Data: ds})
	}
}

// AddAddress publishes A/AAAA records for name.
func (z *Zone) AddAddress(name dnswire.Name, addrs ...netip.Addr) {
	z.addGlue(name, addrs)
}

func (z *Zone) addGlue(host dnswire.Name, addrs []netip.Addr) {
	if !host.IsSubdomainOf(z.Origin) {
		return
	}
	for _, a := range addrs {
		var data dnswire.RData
		if a.Is4() {
			data = dnswire.A{Addr: a}
		} else {
			data = dnswire.AAAA{Addr: a}
		}
		z.Add(dnswire.RR{Name: host, Class: dnswire.ClassIN, TTL: z.DefaultTTL, Data: data})
	}
}

// IsDelegation reports whether name is a delegation point in this zone.
func (z *Zone) IsDelegation(name dnswire.Name) bool { return z.delegations[name] }

// delegationAbove returns the closest delegation point at or above name
// (strictly below the origin), if any.
func (z *Zone) delegationAbove(name dnswire.Name) (dnswire.Name, bool) {
	for n := name; n != z.Origin && !n.IsRoot(); n = n.Parent() {
		if z.delegations[n] {
			return n, true
		}
	}
	return "", false
}

// Authoritative reports whether name is authoritative data in this zone
// (under the origin and not below a delegation cut; the cut itself is
// authoritative only for DS).
func (z *Zone) Authoritative(name dnswire.Name) bool {
	if !name.IsSubdomainOf(z.Origin) {
		return false
	}
	_, below := z.delegationAbove(name)
	return !below
}

// Signed reports whether Sign has run.
func (z *Zone) Signed() bool { return z.signed }

func (z *Zone) String() string {
	return fmt.Sprintf("zone %s (%d rrsets, signed=%t)", z.Origin, len(z.rrsets), z.signed)
}
