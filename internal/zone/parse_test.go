package zone

import (
	"net/netip"
	"reflect"
	"strings"
	"testing"

	"github.com/extended-dns-errors/edelab/internal/dnssec"
	"github.com/extended-dns-errors/edelab/internal/dnswire"
)

// TestMasterRoundTrip renders a fully signed zone to master format, parses
// it back, and checks every RRset and signature survived byte-for-byte.
func TestMasterRoundTrip(t *testing.T) {
	orig := signedZone(t)
	orig.Add(dnswire.RR{Name: dnswire.MustName("txt.example.com"), Class: dnswire.ClassIN,
		TTL: 120, Data: dnswire.TXT{Strings: []string{"hello world", `quote " inside`}}})
	orig.Add(dnswire.RR{Name: dnswire.MustName("mail.example.com"), Class: dnswire.ClassIN,
		TTL: 120, Data: dnswire.MX{Preference: 10, Host: dnswire.MustName("mx.example.com")}})

	parsed, err := ParseMaster(strings.NewReader(orig.Master()))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Origin != orig.Origin {
		t.Fatalf("origin = %s", parsed.Origin)
	}
	if !parsed.Signed() {
		t.Error("parsed zone not marked signed despite RRSIGs")
	}

	for _, name := range orig.Names() {
		for _, typ := range orig.typesAt(name) {
			a := dnssec.SortRRsetCanonical(append([]dnswire.RR(nil), orig.RRset(name, typ)...))
			b := dnssec.SortRRsetCanonical(append([]dnswire.RR(nil), parsed.RRset(name, typ)...))
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s/%s differs after round trip:\n orig %v\n back %v", name, typ, a, b)
			}
			sa := len(orig.Sigs(name, typ))
			sb := len(parsed.Sigs(name, typ))
			if sa != sb {
				t.Errorf("%s/%s: %d sigs became %d", name, typ, sa, sb)
			}
		}
	}
}

// TestParsedZoneStillServesAndValidates loads the rendered zone into a
// fresh resolver world and checks answers and denial still validate — the
// parsed artifact is fully servable, not just storable.
func TestParsedZoneStillServesAndValidates(t *testing.T) {
	orig := signedZone(t)
	parsed, err := ParseMaster(strings.NewReader(orig.Master()))
	if err != nil {
		t.Fatal(err)
	}

	// Positive answer with signatures.
	res := parsed.Lookup(dnswire.MustName("www.example.com"), dnswire.TypeA, true)
	if res.Kind != ResultAnswer {
		t.Fatalf("Kind = %v", res.Kind)
	}
	var set, sigs []dnswire.RR
	for _, rr := range res.Answer {
		if rr.Type() == dnswire.TypeRRSIG {
			sigs = append(sigs, rr)
		} else {
			set = append(set, rr)
		}
	}
	var keys []dnswire.DNSKEY
	for _, rr := range parsed.RRset(parsed.Origin, dnswire.TypeDNSKEY) {
		keys = append(keys, rr.Data.(dnswire.DNSKEY))
	}
	chk := dnssec.CheckRRset(set, sigs, keys, now, dnssec.StandardSupport())
	if chk.Status != dnssec.SigOK {
		t.Errorf("parsed answer validation: %v", chk.Status)
	}

	// NXDOMAIN denial still carries a usable NSEC3 proof.
	res = parsed.Lookup(dnswire.MustName("nx.example.com"), dnswire.TypeA, true)
	if res.Kind != ResultNXDomain {
		t.Fatalf("Kind = %v", res.Kind)
	}
	nsec3 := 0
	for _, rr := range res.Authority {
		if rr.Type() == dnswire.TypeNSEC3 {
			nsec3++
		}
	}
	if nsec3 < 2 {
		t.Errorf("parsed denial has %d NSEC3 records", nsec3)
	}
}

func TestParseMasterNSECZone(t *testing.T) {
	z := New(dnswire.MustName("n.example"), 300)
	z.AddNS(dnswire.MustName("ns1.n.example"), netip.MustParseAddr("198.18.7.1"))
	z.AddAddress(dnswire.MustName("www.n.example"), netip.MustParseAddr("203.0.113.9"))
	if err := z.Sign(SignOptions{Inception: inception, Expiration: expiration, DenialNSEC: true}); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseMaster(strings.NewReader(z.Master()))
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.nsecMode {
		t.Error("parsed zone not in NSEC mode")
	}
	res := parsed.Lookup(dnswire.MustName("zzz.n.example"), dnswire.TypeA, true)
	hasNSEC := false
	for _, rr := range res.Authority {
		if rr.Type() == dnswire.TypeNSEC {
			hasNSEC = true
		}
	}
	if !hasNSEC {
		t.Error("parsed NSEC zone serves no NSEC denial")
	}
}

func TestParseMasterErrors(t *testing.T) {
	cases := []string{
		"",
		"www.example.com. 300 IN A 192.0.2.1", // record before $ORIGIN
		"$ORIGIN example.com.\nbad line",
		"$ORIGIN example.com.\nwww 300 IN A not-an-ip",
		"$ORIGIN example.com.\nwww 300 CH A 192.0.2.1",
		"$ORIGIN example.com.\nwww 300 IN WEIRD data",
		"$ORIGIN example.com.\nwww 300 IN TXT \"unterminated",
	}
	for _, c := range cases {
		if _, err := ParseMaster(strings.NewReader(c)); err == nil {
			t.Errorf("ParseMaster accepted %q", c)
		}
	}
}

// TestTestbedZonesRoundTrip pushes every Table 3 zone artifact through the
// render→parse cycle.
func TestTestbedZonesRoundTrip(t *testing.T) {
	// Avoid an import cycle with the testbed package by re-creating a few
	// representative misconfigured zones here.
	build := func(mutate func(*Zone) error) *Zone {
		z := signedZone(t)
		if mutate != nil {
			if err := mutate(z); err != nil {
				t.Fatal(err)
			}
		}
		return z
	}
	zones := map[string]*Zone{
		"valid":       build(nil),
		"rrsig-freed": build(func(z *Zone) error { z.RemoveAllSigs(); return nil }),
		"expired":     build(func(z *Zone) error { return z.ResignAllWithWindow(inception-1000, inception-100) }),
		"garbled":     build(func(z *Zone) error { return z.GarbleNSEC3Owners() }),
	}
	for label, z := range zones {
		parsed, err := ParseMaster(strings.NewReader(z.Master()))
		if err != nil {
			t.Errorf("%s: %v", label, err)
			continue
		}
		if len(parsed.Names()) != len(z.Names()) {
			t.Errorf("%s: %d names became %d", label, len(z.Names()), len(parsed.Names()))
		}
	}
}
