package zone

import (
	"sort"

	"github.com/extended-dns-errors/edelab/internal/dnswire"
)

// NSEC (RFC 4034 §4) denial support: the non-hashed alternative to NSEC3.
// Real deployments use both (the root and several TLDs are NSEC-signed);
// the wild-scan's §4.2 item 9 explicitly covers "missing NSEC/NSEC3"
// proofs. Zones choose at signing time via SignOptions.DenialNSEC.

// buildNSECChain links every authoritative owner name in canonical order
// with NSEC records carrying the type bitmaps.
func (z *Zone) buildNSECChain() {
	// Remove any previous chain.
	for _, name := range z.nsecChain {
		z.RemoveRRset(name, dnswire.TypeNSEC)
	}
	z.nsecChain = nil

	typesAt := make(map[dnswire.Name][]dnswire.Type)
	for k := range z.rrsets {
		cut, below := z.delegationAbove(k.name)
		if below && k.name != cut {
			continue
		}
		if below && k.name == cut {
			if k.typ == dnswire.TypeNS || k.typ == dnswire.TypeDS {
				typesAt[k.name] = append(typesAt[k.name], k.typ)
			}
			continue
		}
		typesAt[k.name] = append(typesAt[k.name], k.typ)
	}

	names := make([]dnswire.Name, 0, len(typesAt))
	for name := range typesAt {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return names[i].Compare(names[j]) < 0 })
	z.nsecChain = names

	for i, name := range names {
		next := names[(i+1)%len(names)]
		types := typesAt[name]
		if z.Authoritative(name) {
			types = append(types, dnswire.TypeRRSIG, dnswire.TypeNSEC)
		}
		z.SetRRset(name, dnswire.TypeNSEC, []dnswire.RR{{
			Name: name, Class: dnswire.ClassIN, TTL: z.DefaultTTL,
			Data: dnswire.NSEC{NextName: next, Types: dedupTypes(types)},
		}})
	}
}

// nsecCovering returns the NSEC record (with signatures) whose span covers
// qname: owner < qname < next in canonical order, wrapping at the apex.
func (z *Zone) nsecCovering(qname dnswire.Name) ([]dnswire.RR, []dnswire.RR, bool) {
	if len(z.nsecChain) == 0 {
		return nil, nil, false
	}
	for i, owner := range z.nsecChain {
		next := z.nsecChain[(i+1)%len(z.nsecChain)]
		if nsecCovers(owner, next, qname) {
			return z.RRset(owner, dnswire.TypeNSEC), z.Sigs(owner, dnswire.TypeNSEC), true
		}
	}
	return nil, nil, false
}

// nsecCovers reports owner < name < next in canonical order, handling the
// wrap-around record (owner >= next) at the end of the chain.
func nsecCovers(owner, next, name dnswire.Name) bool {
	switch {
	case owner.Compare(next) < 0:
		return owner.Compare(name) < 0 && name.Compare(next) < 0
	case owner.Compare(next) > 0:
		return owner.Compare(name) < 0 || name.Compare(next) < 0
	default:
		return name.Compare(owner) != 0
	}
}

// nsecDenialRecords assembles the NSEC proof: for NODATA the matching NSEC
// at qname; for NXDOMAIN the cover of qname plus the cover of the wildcard
// (RFC 4035 §3.1.3.2).
func (z *Zone) nsecDenialRecords(qname dnswire.Name, nodata bool) []dnswire.RR {
	var out []dnswire.RR
	add := func(rrs, sigs []dnswire.RR) {
		out = append(out, rrs...)
		out = append(out, sigs...)
	}
	if nodata {
		add(z.RRset(qname, dnswire.TypeNSEC), z.Sigs(qname, dnswire.TypeNSEC))
		return out
	}
	if rrs, sigs, ok := z.nsecCovering(qname); ok {
		add(rrs, sigs)
	}
	ce := qname.Parent()
	for !ce.IsRoot() && !z.HasName(ce) && ce != z.Origin {
		ce = ce.Parent()
	}
	if rrs, sigs, ok := z.nsecCovering(ce.Child("*")); ok {
		add(rrs, sigs)
	}
	return dedupRRs(out)
}
