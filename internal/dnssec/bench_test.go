package dnssec

import (
	"testing"

	"github.com/extended-dns-errors/edelab/internal/dnswire"
)

func benchKey(b *testing.B, alg Algorithm, bits int) *KeyPair {
	b.Helper()
	k, err := GenerateKey(alg, 256, bits)
	if err != nil {
		b.Fatal(err)
	}
	return k
}

func benchSignVerify(b *testing.B, alg Algorithm, bits int) {
	key := benchKey(b, alg, bits)
	rrs := testRRset("bench.example")
	signer := dnswire.MustName("example")

	b.Run("sign", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SignRRset(rrs, key, signer, testInception, testExpiration); err != nil {
				b.Fatal(err)
			}
		}
	})
	sigRR, err := SignRRset(rrs, key, signer, testInception, testExpiration)
	if err != nil {
		b.Fatal(err)
	}
	sig := sigRR.Data.(dnswire.RRSIG)
	pub := key.DNSKEY()
	b.Run("verify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := VerifyRRSIG(sig, rrs, pub); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkRRSIGEd25519(b *testing.B)   { benchSignVerify(b, AlgED25519, 0) }
func BenchmarkRRSIGECDSAP256(b *testing.B) { benchSignVerify(b, AlgECDSAP256SHA256, 0) }
func BenchmarkRRSIGRSASHA256(b *testing.B) { benchSignVerify(b, AlgRSASHA256, 1024) }

func BenchmarkNSEC3Hash(b *testing.B) {
	name := dnswire.MustName("www.extended-dns-errors.com")
	salt := []byte{0xAA, 0xBB, 0xCC, 0xDD}
	b.Run("iter0", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			NSEC3Hash(name, 0, salt)
		}
	})
	b.Run("iter200", func(b *testing.B) {
		// The nsec3-iter-200 test case's cost (RFC 9276's motivation).
		for i := 0; i < b.N; i++ {
			NSEC3Hash(name, 200, salt)
		}
	})
}

func BenchmarkCreateDS(b *testing.B) {
	key := benchKey(b, AlgED25519, 0)
	pub := key.DNSKEY()
	owner := dnswire.MustName("child.example")
	for i := 0; i < b.N; i++ {
		if _, err := CreateDS(owner, pub, DigestSHA256); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckRRset(b *testing.B) {
	key := benchKey(b, AlgED25519, 0)
	rrs := testRRset("bench.example")
	sigRR, err := SignRRset(rrs, key, dnswire.MustName("example"), testInception, testExpiration)
	if err != nil {
		b.Fatal(err)
	}
	keys := []dnswire.DNSKEY{key.DNSKEY()}
	sup := StandardSupport()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := CheckRRset(rrs, []dnswire.RR{sigRR}, keys, testNow, sup); c.Status != SigOK {
			b.Fatal(c.Status)
		}
	}
}
