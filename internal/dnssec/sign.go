package dnssec

import (
	"crypto/sha1"
	"crypto/sha256"
	"crypto/sha512"
	"errors"
	"fmt"
	"sort"

	"github.com/extended-dns-errors/edelab/internal/dnswire"
)

// ErrEmptyRRset is returned when signing or verifying an empty record set.
var ErrEmptyRRset = errors.New("dnssec: empty RRset")

// SortRRsetCanonical sorts the records of a single RRset into canonical
// order (RFC 4034 §6.3): ascending by canonical RDATA wire form. The slice is
// sorted in place and returned.
func SortRRsetCanonical(rrs []dnswire.RR) []dnswire.RR {
	sort.SliceStable(rrs, func(i, j int) bool {
		a := rdataWire(rrs[i])
		b := rdataWire(rrs[j])
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return rrs
}

// rdataWire returns the canonical wire form of the RDATA alone.
func rdataWire(rr dnswire.RR) []byte {
	full := rr.CanonicalWire(rr.TTL)
	// owner + type(2) + class(2) + ttl(4) + rdlength(2)
	skip := rr.Name.WireLength() + 10
	return full[skip:]
}

// signedData builds the octet stream covered by an RRSIG: the RRSIG RDATA
// with the signature field removed, followed by each RR of the set in
// canonical form with the original TTL (RFC 4034 §3.1.8.1). When the RRSIG
// labels field is smaller than the owner's label count, the RRset was
// synthesized from a wildcard and the signed owner is the wildcard form
// "*.<rightmost labels>" (RFC 4035 §5.3.2).
func signedData(sig dnswire.RRSIG, rrs []dnswire.RR) []byte {
	data := sig.SignedData()
	sorted := SortRRsetCanonical(append([]dnswire.RR(nil), rrs...))
	for _, rr := range sorted {
		owner := rr.Name
		if labels := owner.Labels(); int(sig.Labels) < len(labels) {
			owner = wildcardForm(owner, int(sig.Labels))
		}
		canon := rr
		canon.Name = owner
		data = append(data, canon.CanonicalWire(sig.OriginalTTL)...)
	}
	return data
}

// wildcardForm returns "*." prepended to the rightmost n labels of name.
func wildcardForm(name dnswire.Name, n int) dnswire.Name {
	labels := name.Labels()
	if n >= len(labels) {
		return name
	}
	rest := labels[len(labels)-n:]
	return dnswire.MustName("*." + joinLabels(rest))
}

func joinLabels(labels []string) string {
	out := ""
	for _, l := range labels {
		out += l + "."
	}
	return out
}

// SignRRset signs an RRset with key, producing an RRSIG record owned by the
// set's owner name. All records must share owner, class, type, and TTL.
func SignRRset(rrs []dnswire.RR, key *KeyPair, signer dnswire.Name, inception, expiration uint32) (dnswire.RR, error) {
	if len(rrs) == 0 {
		return dnswire.RR{}, ErrEmptyRRset
	}
	owner := rrs[0].Name
	for _, rr := range rrs[1:] {
		if rr.Name != owner || rr.Type() != rrs[0].Type() {
			return dnswire.RR{}, fmt.Errorf("dnssec: mixed RRset (%s/%s vs %s/%s)", rr.Name, rr.Type(), owner, rrs[0].Type())
		}
	}
	// The labels field excludes a leading "*" so wildcard-synthesized
	// responses verify against the wildcard's signature (RFC 4034 §3.1.3).
	labelCount := owner.LabelCount()
	if ls := owner.Labels(); len(ls) > 0 && ls[0] == "*" {
		labelCount--
	}
	sig := dnswire.RRSIG{
		TypeCovered: rrs[0].Type(),
		Algorithm:   uint8(key.Alg),
		Labels:      uint8(labelCount),
		OriginalTTL: rrs[0].TTL,
		Expiration:  expiration,
		Inception:   inception,
		KeyTag:      key.KeyTag(),
		SignerName:  signer,
	}
	raw, err := key.Sign(signedData(sig, rrs))
	if err != nil {
		return dnswire.RR{}, err
	}
	sig.Signature = raw
	return dnswire.RR{Name: owner, Class: rrs[0].Class, TTL: rrs[0].TTL, Data: sig}, nil
}

// VerifyRRSIG checks that sig is a valid signature over rrs with the given
// DNSKEY. It checks the cryptographic binding only; temporal validity and
// key eligibility are the validator's concern.
func VerifyRRSIG(sig dnswire.RRSIG, rrs []dnswire.RR, key dnswire.DNSKEY) error {
	if len(rrs) == 0 {
		return ErrEmptyRRset
	}
	if sig.KeyTag != key.KeyTag() || sig.Algorithm != key.Algorithm {
		return ErrBadSignature
	}
	return Verify(Algorithm(sig.Algorithm), key.PublicKey, signedData(sig, rrs), sig.Signature)
}

// CreateDS derives a DS record for a DNSKEY at owner using digest type dt
// (RFC 4034 §5.1.4: digest over owner wire form plus DNSKEY RDATA).
func CreateDS(owner dnswire.Name, key dnswire.DNSKEY, dt DigestType) (dnswire.DS, error) {
	rr := dnswire.RR{Name: owner, Class: dnswire.ClassIN, TTL: 0, Data: key}
	full := rr.CanonicalWire(0)
	// Strip type/class/ttl/rdlength to get owner || RDATA.
	ownerLen := owner.WireLength()
	data := append([]byte(nil), full[:ownerLen]...)
	data = append(data, full[ownerLen+10:]...)

	digest, err := dsDigest(dt, data)
	if err != nil {
		return dnswire.DS{}, err
	}
	return dnswire.DS{
		KeyTag:     key.KeyTag(),
		Algorithm:  key.Algorithm,
		DigestType: uint8(dt),
		Digest:     digest,
	}, nil
}

func dsDigest(dt DigestType, data []byte) ([]byte, error) {
	switch dt {
	case DigestSHA1:
		sum := sha1.Sum(data)
		return sum[:], nil
	case DigestSHA256:
		sum := sha256.Sum256(data)
		return sum[:], nil
	case DigestSHA384:
		sum := sha512.Sum384(data)
		return sum[:], nil
	case DigestGOST:
		// Stand-in for GOST R 34.11-94 (not in the Go stdlib): a
		// domain-separated SHA-256 with the real 32-byte output size.
		h := sha256.New()
		h.Write([]byte("standin:gost-r-34.11-94:"))
		h.Write(data)
		return h.Sum(nil), nil
	default:
		return nil, fmt.Errorf("dnssec: cannot compute digest type %d", dt)
	}
}

// MatchesDS reports whether the DNSKEY at owner corresponds to the DS record:
// same key tag and algorithm, and a matching digest (when computable).
func MatchesDS(owner dnswire.Name, key dnswire.DNSKEY, ds dnswire.DS) bool {
	if ds.KeyTag != key.KeyTag() || ds.Algorithm != key.Algorithm {
		return false
	}
	want, err := CreateDS(owner, key, DigestType(ds.DigestType))
	if err != nil {
		return false
	}
	if len(want.Digest) != len(ds.Digest) {
		return false
	}
	for i := range want.Digest {
		if want.Digest[i] != ds.Digest[i] {
			return false
		}
	}
	return true
}
