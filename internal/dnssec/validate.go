package dnssec

import (
	"fmt"

	"github.com/extended-dns-errors/edelab/internal/dnswire"
)

// SigStatus classifies the outcome of validating one RRset against a set of
// candidate DNSKEYs. The order encodes reporting priority: when several
// signatures fail differently, the most specific diagnosis wins.
type SigStatus int

// RRset validation outcomes.
const (
	SigOK SigStatus = iota
	// SigMissing: no RRSIG covering the set was present at all.
	SigMissing
	// SigNoMatchingKey: RRSIGs exist but none references a usable DNSKEY
	// (key tag + algorithm + zone-key bit).
	SigNoMatchingKey
	// SigUnsupportedAlg: the only matching signatures use algorithms the
	// validator does not implement (treat as insecure per RFC 4035 §5.2).
	SigUnsupportedAlg
	// SigExpiredBeforeValid: expiration precedes inception (EDE 25 material).
	SigExpiredBeforeValid
	// SigExpired: all usable signatures have expired.
	SigExpired
	// SigNotYetValid: all usable signatures have inception in the future.
	SigNotYetValid
	// SigCryptoFailed: a matching, temporally valid signature failed
	// cryptographic verification.
	SigCryptoFailed
)

var sigStatusNames = map[SigStatus]string{
	SigOK:                 "ok",
	SigMissing:            "rrsig-missing",
	SigNoMatchingKey:      "no-matching-key",
	SigUnsupportedAlg:     "unsupported-algorithm",
	SigExpiredBeforeValid: "expired-before-valid",
	SigExpired:            "expired",
	SigNotYetValid:        "not-yet-valid",
	SigCryptoFailed:       "crypto-failed",
}

func (s SigStatus) String() string {
	if n, ok := sigStatusNames[s]; ok {
		return n
	}
	return fmt.Sprintf("SigStatus(%d)", int(s))
}

// RRsetCheck is the result of CheckRRset.
type RRsetCheck struct {
	Status SigStatus
	// VerifiedBy is the key tag of the DNSKEY that produced a valid
	// signature when Status is SigOK.
	VerifiedBy uint16
	// VerifiedSEP reports whether the verifying key has the SEP flag.
	VerifiedSEP bool
	// Wildcard reports that the verified signature's labels field is
	// smaller than the owner's label count: the answer was synthesized
	// from a wildcard and needs an accompanying denial proof for the
	// exact name (RFC 4035 §5.3.4).
	Wildcard bool
	// UnsupportedAlgs lists signature algorithms that were skipped as
	// unsupported, for EXTRA-TEXT reporting.
	UnsupportedAlgs []Algorithm
	// Expiration/Inception of the most relevant failing signature, for
	// EXTRA-TEXT reporting ("signature expired at ...").
	Expiration, Inception uint32
}

// TimeStatus classifies an RRSIG validity window at instant now, using
// RFC 1982 serial-number arithmetic on the 32-bit timestamps.
func TimeStatus(sig dnswire.RRSIG, now uint32) SigStatus {
	if serialLT(sig.Expiration, sig.Inception) {
		return SigExpiredBeforeValid
	}
	if serialLT(sig.Expiration, now) {
		return SigExpired
	}
	if serialLT(now, sig.Inception) {
		return SigNotYetValid
	}
	return SigOK
}

// serialLT reports a < b in RFC 1982 serial arithmetic with SERIAL_BITS=32.
func serialLT(a, b uint32) bool {
	return (a < b && b-a < 1<<31) || (a > b && a-b > 1<<31)
}

// CheckRRset validates the records in rrs (one RRset) against the RRSIGs in
// sigs using the candidate keys. now is the validation instant in epoch
// seconds; sup filters which algorithms are even attempted.
//
// keys should be the zone's DNSKEY RRset; keys without the zone-key bit are
// ignored per RFC 4034 §2.1.1.
func CheckRRset(rrs []dnswire.RR, sigs []dnswire.RR, keys []dnswire.DNSKEY, now uint32, sup SupportSet) RRsetCheck {
	if len(rrs) == 0 {
		return RRsetCheck{Status: SigMissing}
	}
	covered := rrs[0].Type()
	owner := rrs[0].Name

	var relevant []dnswire.RRSIG
	for _, rr := range sigs {
		s, ok := rr.Data.(dnswire.RRSIG)
		if !ok || s.TypeCovered != covered || rr.Name != owner {
			continue
		}
		relevant = append(relevant, s)
	}
	if len(relevant) == 0 {
		return RRsetCheck{Status: SigMissing}
	}

	// Track the best (highest-priority) failure seen across signatures.
	// The fallback diagnosis, when no signature references a usable key at
	// all, is SigNoMatchingKey; any diagnosis derived from a signature whose
	// key was found outranks the fallback.
	worst := RRsetCheck{Status: SigNoMatchingKey}
	haveMatchDiag := false
	record := func(c RRsetCheck) {
		if !haveMatchDiag || betterDiagnosis(c.Status, worst.Status) {
			worst = c
			haveMatchDiag = true
		}
	}

	for _, sig := range relevant {
		key := findKey(keys, sig.KeyTag, sig.Algorithm)
		if key == nil {
			if !haveMatchDiag {
				worst.Expiration, worst.Inception = sig.Expiration, sig.Inception
			}
			continue
		}
		alg := Algorithm(sig.Algorithm)
		if !sup.Supports(alg) || rsaTooShort(sup, *key) {
			record(RRsetCheck{Status: SigUnsupportedAlg, UnsupportedAlgs: []Algorithm{alg},
				Expiration: sig.Expiration, Inception: sig.Inception})
			continue
		}
		if ts := TimeStatus(sig, now); ts != SigOK {
			record(RRsetCheck{Status: ts, Expiration: sig.Expiration, Inception: sig.Inception})
			continue
		}
		if err := VerifyRRSIG(sig, rrs, *key); err != nil {
			record(RRsetCheck{Status: SigCryptoFailed, Expiration: sig.Expiration, Inception: sig.Inception})
			continue
		}
		return RRsetCheck{Status: SigOK, VerifiedBy: sig.KeyTag, VerifiedSEP: key.IsSEP(),
			Wildcard:   int(sig.Labels) < rrs[0].Name.LabelCount(),
			Expiration: sig.Expiration, Inception: sig.Inception}
	}
	return worst
}

// betterDiagnosis reports whether a is a more specific diagnosis than b.
// Temporal failures outrank crypto failures, which outrank unsupported, so
// that e.g. an expired-but-otherwise-correct signature reports "expired"
// even when another signature fails verification outright.
func betterDiagnosis(a, b SigStatus) bool {
	rank := func(s SigStatus) int {
		switch s {
		case SigExpiredBeforeValid:
			return 6
		case SigExpired, SigNotYetValid:
			return 5
		case SigCryptoFailed:
			return 4
		case SigNoMatchingKey:
			return 3
		case SigUnsupportedAlg:
			return 2
		case SigMissing:
			return 1
		}
		return 0
	}
	return rank(a) > rank(b)
}

func findKey(keys []dnswire.DNSKEY, tag uint16, alg uint8) *dnswire.DNSKEY {
	for i := range keys {
		k := &keys[i]
		if !k.IsZoneKey() {
			continue
		}
		if k.KeyTag() == tag && k.Algorithm == alg {
			return k
		}
	}
	return nil
}

func rsaTooShort(sup SupportSet, key dnswire.DNSKEY) bool {
	if sup.MinRSABits == 0 {
		return false
	}
	switch Algorithm(key.Algorithm) {
	case AlgRSASHA1, AlgRSASHA1NSEC3SHA1, AlgRSASHA256, AlgRSASHA512:
		bits := RSAKeyBits(key.PublicKey)
		return bits > 0 && bits < sup.MinRSABits
	}
	return false
}

// DSMatch describes how a parent DS RRset relates to a child DNSKEY RRset.
type DSMatch struct {
	// TagMatch: some DS (tag, algorithm) pair matches a zone-key DNSKEY.
	TagMatch bool
	// DigestMatch: some DS fully matches (tag, algorithm, digest).
	DigestMatch bool
	// MatchedKey is a key that fully matched, when DigestMatch.
	MatchedKey *dnswire.DNSKEY
	// UnknownAlgs lists DS algorithm numbers not assigned by IANA.
	UnknownAlgs []Algorithm
	// UnsupportedDigests lists DS digest types the validator cannot compute.
	UnsupportedDigests []DigestType
	// AllUnknownAlg / AllUnsupportedDigest: every DS record is affected.
	AllUnknownAlg        bool
	AllUnsupportedDigest bool
}

// MatchDS evaluates every DS against the child's DNSKEY RRset.
func MatchDS(owner dnswire.Name, dsSet []dnswire.DS, keys []dnswire.DNSKEY, sup SupportSet) DSMatch {
	var m DSMatch
	if len(dsSet) == 0 {
		return m
	}
	m.AllUnknownAlg = true
	m.AllUnsupportedDigest = true
	for _, ds := range dsSet {
		alg := Algorithm(ds.Algorithm)
		dt := DigestType(ds.DigestType)
		if !alg.IsAssigned() {
			m.UnknownAlgs = append(m.UnknownAlgs, alg)
		} else {
			m.AllUnknownAlg = false
		}
		if !sup.SupportsDigest(dt) {
			m.UnsupportedDigests = append(m.UnsupportedDigests, dt)
		} else {
			m.AllUnsupportedDigest = false
		}
		for i := range keys {
			k := &keys[i]
			if !k.IsZoneKey() {
				continue
			}
			if k.KeyTag() == ds.KeyTag && k.Algorithm == ds.Algorithm {
				m.TagMatch = true
				if sup.SupportsDigest(dt) && MatchesDS(owner, *k, ds) {
					m.DigestMatch = true
					m.MatchedKey = k
				}
			}
		}
	}
	return m
}

// KeyInventory summarizes the shape of a DNSKEY RRset; the resolver uses it
// to tell apart the paper's DNSKEY misconfiguration cases (Table 3 group 5).
type KeyInventory struct {
	Total       int
	ZoneKeys    int // keys with the zone-key bit set
	SEPKeys     int // zone keys with the SEP bit (KSK convention)
	NonSEPKeys  int // zone keys without SEP (ZSK convention)
	NonZoneKeys int // keys with the zone-key bit cleared (ignored by validators)
	// UnsupportedAlgKeys counts zone keys whose algorithm the validator
	// does not implement; Algs collects their algorithm numbers.
	UnsupportedAlgKeys int
	UnsupportedAlgs    []Algorithm
	// UnassignedAlgKeys counts zone keys with algorithm numbers that are
	// not assigned at all.
	UnassignedAlgKeys int
}

// Inventory inspects a DNSKEY RRset.
func Inventory(keys []dnswire.DNSKEY, sup SupportSet) KeyInventory {
	var inv KeyInventory
	inv.Total = len(keys)
	for _, k := range keys {
		if !k.IsZoneKey() {
			inv.NonZoneKeys++
			continue
		}
		inv.ZoneKeys++
		if k.IsSEP() {
			inv.SEPKeys++
		} else {
			inv.NonSEPKeys++
		}
		alg := Algorithm(k.Algorithm)
		if !alg.IsAssigned() {
			inv.UnassignedAlgKeys++
		}
		if !sup.Supports(alg) {
			inv.UnsupportedAlgKeys++
			inv.UnsupportedAlgs = append(inv.UnsupportedAlgs, alg)
		}
	}
	return inv
}
