package dnssec

import (
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
)

// Stand-in "signature" construction for algorithms the Go standard library
// does not provide (Ed448, GOST R 34.10-2001) or that no modern validator is
// permitted to validate anyway (RSA/MD5, DSA — RFC 8624 §3.1), plus the
// unassigned/reserved algorithm numbers the paper's testbed publishes.
//
// Construction: the "public key" IS the key material, and the signature is
// HMAC-SHA256 keyed by it, expanded with a counter to the algorithm's
// realistic signature length. This is deliberately NOT a secure signature
// scheme (knowledge of the public key suffices to forge); it is a behavioural
// stand-in inside a closed simulation, as documented in DESIGN.md §2. What
// the paper measures for these algorithms is which validators *attempt*
// validation at all — and for those that do, well-formed zones must verify
// and corrupted zones must not, which this construction preserves.

func standinSeedLen(alg Algorithm) int {
	switch alg {
	case AlgED448:
		return 57 // RFC 8080-style Ed448 public key length
	case AlgRSAMD5, AlgDSA, AlgDSANSEC3SHA1:
		return 64
	default:
		return 32
	}
}

func standinSigLen(alg Algorithm) int {
	switch alg {
	case AlgED448:
		return 114
	case AlgDSA, AlgDSANSEC3SHA1:
		return 41 // T + 20-byte R + 20-byte S
	case AlgECCGOST:
		return 64
	default:
		return 64
	}
}

type standinKey struct {
	alg  Algorithm
	seed []byte
}

func (k standinKey) sign(data []byte) ([]byte, error) {
	return standinMAC(k.alg, k.seed, data), nil
}

func standinMAC(alg Algorithm, pub, data []byte) []byte {
	want := standinSigLen(alg)
	out := make([]byte, 0, want+sha256.Size)
	ctr := byte(0)
	for len(out) < want {
		mac := hmac.New(sha256.New, pub)
		mac.Write([]byte{uint8(alg), ctr})
		mac.Write(data)
		out = mac.Sum(out)
		ctr++
	}
	return out[:want]
}

func verifyStandin(alg Algorithm, pub, data, sig []byte) error {
	want := standinMAC(alg, pub, data)
	if len(sig) != len(want) || subtle.ConstantTimeCompare(sig, want) != 1 {
		return ErrBadSignature
	}
	return nil
}
