// Package dnssec implements DNSSEC (RFC 4033–4035, RFC 5155) from scratch on
// top of the dnswire codec: key generation, key tags, DS digests, RRset
// signing, signature verification, NSEC3 hashing, and a chain validator that
// reports fine-grained failure reasons. Those reasons are the raw material
// the resolver's vendor profiles turn into Extended DNS Errors.
//
// Algorithms backed by real cryptography: RSA/SHA-1, RSASHA1-NSEC3-SHA1,
// RSA/SHA-256, RSA/SHA-512, ECDSA P-256, ECDSA P-384, Ed25519.
//
// Algorithms backed by deterministic stand-ins (documented substitution, see
// DESIGN.md §2): RSA/MD5, DSA, DSA-NSEC3-SHA1, ECC-GOST, Ed448, and the
// unassigned/reserved numbers used by the paper's testbed. The paper measures
// *support classification*, not cryptographic strength; the stand-ins verify
// for validators configured to support them and classify as unsupported
// everywhere else, which is the observable behaviour under study.
package dnssec

import "fmt"

// Algorithm is a DNSSEC algorithm number (IANA dns-sec-alg-numbers).
type Algorithm uint8

// DNSSEC algorithm numbers.
const (
	AlgRSAMD5           Algorithm = 1
	AlgDSA              Algorithm = 3
	AlgRSASHA1          Algorithm = 5
	AlgDSANSEC3SHA1     Algorithm = 6
	AlgRSASHA1NSEC3SHA1 Algorithm = 7
	AlgRSASHA256        Algorithm = 8
	AlgRSASHA512        Algorithm = 10
	AlgECCGOST          Algorithm = 12
	AlgECDSAP256SHA256  Algorithm = 13
	AlgECDSAP384SHA384  Algorithm = 14
	AlgED25519          Algorithm = 15
	AlgED448            Algorithm = 16
	// AlgUnassigned is an unassigned algorithm number the testbed uses
	// (Table 3: unassigned-zsk-algo, ds-unassigned-key-algo).
	AlgUnassigned Algorithm = 100
	// AlgReserved is a reserved algorithm number the testbed uses
	// (Table 3: reserved-zsk-algo, ds-reserved-key-algo).
	AlgReserved Algorithm = 200
)

var algNames = map[Algorithm]string{
	AlgRSAMD5:           "RSAMD5",
	AlgDSA:              "DSA",
	AlgRSASHA1:          "RSASHA1",
	AlgDSANSEC3SHA1:     "DSA-NSEC3-SHA1",
	AlgRSASHA1NSEC3SHA1: "RSASHA1-NSEC3-SHA1",
	AlgRSASHA256:        "RSASHA256",
	AlgRSASHA512:        "RSASHA512",
	AlgECCGOST:          "ECC-GOST",
	AlgECDSAP256SHA256:  "ECDSAP256SHA256",
	AlgECDSAP384SHA384:  "ECDSAP384SHA384",
	AlgED25519:          "ED25519",
	AlgED448:            "ED448",
}

func (a Algorithm) String() string {
	if s, ok := algNames[a]; ok {
		return s
	}
	return fmt.Sprintf("ALG%d", uint8(a))
}

// IsAssigned reports whether a is an assigned signing algorithm in the IANA
// registry (as of the paper's measurement period).
func (a Algorithm) IsAssigned() bool {
	_, ok := algNames[a]
	return ok
}

// DigestType is a DS digest algorithm number (IANA ds-rr-types).
type DigestType uint8

// DS digest types.
const (
	DigestSHA1   DigestType = 1
	DigestSHA256 DigestType = 2
	DigestGOST   DigestType = 3
	DigestSHA384 DigestType = 4
	// DigestUnassigned is the unassigned digest number observed in the wild
	// scan (§4.2 item 10: "an unassigned digest algorithm type (8)").
	DigestUnassigned DigestType = 8
)

func (d DigestType) String() string {
	switch d {
	case DigestSHA1:
		return "SHA-1"
	case DigestSHA256:
		return "SHA-256"
	case DigestGOST:
		return "GOST R 34.11-94"
	case DigestSHA384:
		return "SHA-384"
	}
	return fmt.Sprintf("DIGEST%d", uint8(d))
}

// IsAssigned reports whether d is an assigned DS digest type.
func (d DigestType) IsAssigned() bool {
	return d == DigestSHA1 || d == DigestSHA256 || d == DigestGOST || d == DigestSHA384
}

// SupportSet describes which algorithms and digests a validator implements.
// Real resolvers differ here: e.g. Cloudflare (May 2023) did not support
// Ed448 or GOST, while the open-source engines validate Ed448 (§3.3).
type SupportSet struct {
	Algorithms map[Algorithm]bool
	Digests    map[DigestType]bool
	// MinRSABits, when non-zero, marks RSA keys shorter than this as
	// unsupported ("unsupported key size", §4.2 item 7 — Cloudflare rejects
	// 512-bit keys even though RFC 2537/5702 allow them).
	MinRSABits int
}

// Supports reports whether algorithm a is validated by this support set.
func (s SupportSet) Supports(a Algorithm) bool { return s.Algorithms[a] }

// SupportsDigest reports whether DS digest d is validated.
func (s SupportSet) SupportsDigest(d DigestType) bool { return s.Digests[d] }

// StandardSupport returns the support set of a modern open-source validator:
// every assigned signing algorithm except the ones RFC 8624 forbids
// validating (RSA/MD5) or discourages (DSA), plus Ed448 and GOST stand-ins.
func StandardSupport() SupportSet {
	return SupportSet{
		Algorithms: map[Algorithm]bool{
			AlgRSASHA1:          true,
			AlgRSASHA1NSEC3SHA1: true,
			AlgRSASHA256:        true,
			AlgRSASHA512:        true,
			AlgECDSAP256SHA256:  true,
			AlgECDSAP384SHA384:  true,
			AlgED25519:          true,
			AlgED448:            true,
		},
		Digests: map[DigestType]bool{
			DigestSHA1:   true,
			DigestSHA256: true,
			DigestSHA384: true,
		},
	}
}

// CloudflareSupport returns Cloudflare DNS's support set as measured by the
// paper: no Ed448, no GOST (algorithm or digest), and a 1024-bit RSA floor.
func CloudflareSupport() SupportSet {
	s := StandardSupport()
	s.Algorithms[AlgED448] = false
	s.MinRSABits = 1024
	return s
}
