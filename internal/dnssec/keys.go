package dnssec

import (
	"crypto"
	"crypto/ecdsa"
	"crypto/ed25519"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/rsa"
	"errors"
	"fmt"
	"math/big"

	"github.com/extended-dns-errors/edelab/internal/dnswire"
)

// Errors from key operations and signature verification.
var (
	ErrUnsupportedAlgorithm = errors.New("dnssec: unsupported algorithm")
	ErrBadSignature         = errors.New("dnssec: signature verification failed")
	ErrBadPublicKey         = errors.New("dnssec: malformed public key")
)

// KeyPair is a DNSSEC signing key: the private half plus everything needed
// to publish and identify the public half.
type KeyPair struct {
	Alg   Algorithm
	Flags uint16 // dnswire.DNSKEYFlagZone, optionally |DNSKEYFlagSEP

	pubWire []byte
	priv    privateKey
	bits    int // RSA modulus size; 0 otherwise
}

type privateKey interface {
	sign(data []byte) ([]byte, error)
}

// GenerateKey creates a key pair for alg. flags should be 256 for a ZSK or
// 257 for a KSK. bits selects the RSA modulus size and is ignored for other
// algorithms; 0 means a sensible default.
func GenerateKey(alg Algorithm, flags uint16, bits int) (*KeyPair, error) {
	kp := &KeyPair{Alg: alg, Flags: flags}
	switch alg {
	case AlgRSASHA1, AlgRSASHA1NSEC3SHA1, AlgRSASHA256, AlgRSASHA512:
		if bits == 0 {
			bits = 1024
		}
		priv, err := rsa.GenerateKey(rand.Reader, bits)
		if err != nil {
			return nil, fmt.Errorf("dnssec: rsa keygen: %w", err)
		}
		kp.priv = &rsaKey{priv: priv, hash: rsaHash(alg)}
		kp.pubWire = encodeRSAPublic(&priv.PublicKey)
		kp.bits = bits
	case AlgECDSAP256SHA256:
		priv, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
		if err != nil {
			return nil, fmt.Errorf("dnssec: ecdsa keygen: %w", err)
		}
		kp.priv = &ecdsaKey{priv: priv, hash: crypto.SHA256, fieldBytes: 32}
		kp.pubWire = encodeECDSAPublic(&priv.PublicKey, 32)
	case AlgECDSAP384SHA384:
		priv, err := ecdsa.GenerateKey(elliptic.P384(), rand.Reader)
		if err != nil {
			return nil, fmt.Errorf("dnssec: ecdsa keygen: %w", err)
		}
		kp.priv = &ecdsaKey{priv: priv, hash: crypto.SHA384, fieldBytes: 48}
		kp.pubWire = encodeECDSAPublic(&priv.PublicKey, 48)
	case AlgED25519:
		pub, priv, err := ed25519.GenerateKey(rand.Reader)
		if err != nil {
			return nil, fmt.Errorf("dnssec: ed25519 keygen: %w", err)
		}
		kp.priv = ed25519Key{priv: priv}
		kp.pubWire = []byte(pub)
	case AlgRSAMD5, AlgDSA, AlgDSANSEC3SHA1, AlgECCGOST, AlgED448, AlgUnassigned, AlgReserved:
		seed := make([]byte, standinSeedLen(alg))
		if _, err := rand.Read(seed); err != nil {
			return nil, err
		}
		kp.priv = standinKey{alg: alg, seed: seed}
		kp.pubWire = seed
	default:
		return nil, fmt.Errorf("%w: %s", ErrUnsupportedAlgorithm, alg)
	}
	return kp, nil
}

// DNSKEY returns the public key as DNSKEY RDATA.
func (k *KeyPair) DNSKEY() dnswire.DNSKEY {
	return dnswire.DNSKEY{
		Flags:     k.Flags,
		Protocol:  3,
		Algorithm: uint8(k.Alg),
		PublicKey: append([]byte(nil), k.pubWire...),
	}
}

// KeyTag returns the RFC 4034 Appendix B key tag of the public key.
func (k *KeyPair) KeyTag() uint16 { return k.DNSKEY().KeyTag() }

// Sign signs data with the private key.
func (k *KeyPair) Sign(data []byte) ([]byte, error) { return k.priv.sign(data) }

// RSABits returns the RSA modulus size, or 0 for non-RSA keys. Validators
// with a key-size floor use this via the DNSKEY wire length instead.
func (k *KeyPair) RSABits() int { return k.bits }

// --- RSA (RFC 3110, RFC 5702) ---

type rsaKey struct {
	priv *rsa.PrivateKey
	hash crypto.Hash
}

func rsaHash(alg Algorithm) crypto.Hash {
	switch alg {
	case AlgRSASHA256:
		return crypto.SHA256
	case AlgRSASHA512:
		return crypto.SHA512
	default:
		return crypto.SHA1
	}
}

func (k *rsaKey) sign(data []byte) ([]byte, error) {
	h := k.hash.New()
	h.Write(data)
	return rsa.SignPKCS1v15(rand.Reader, k.priv, k.hash, h.Sum(nil))
}

func encodeRSAPublic(pub *rsa.PublicKey) []byte {
	e := big.NewInt(int64(pub.E)).Bytes()
	var out []byte
	if len(e) < 256 {
		out = append(out, byte(len(e)))
	} else {
		out = append(out, 0, byte(len(e)>>8), byte(len(e)))
	}
	out = append(out, e...)
	return append(out, pub.N.Bytes()...)
}

func parseRSAPublic(wire []byte) (*rsa.PublicKey, error) {
	if len(wire) < 3 {
		return nil, ErrBadPublicKey
	}
	expLen := int(wire[0])
	off := 1
	if expLen == 0 {
		if len(wire) < 4 {
			return nil, ErrBadPublicKey
		}
		expLen = int(wire[1])<<8 | int(wire[2])
		off = 3
	}
	if len(wire) < off+expLen+1 {
		return nil, ErrBadPublicKey
	}
	e := new(big.Int).SetBytes(wire[off : off+expLen])
	if !e.IsInt64() || e.Int64() > 1<<31 || e.Int64() < 3 {
		return nil, ErrBadPublicKey
	}
	n := new(big.Int).SetBytes(wire[off+expLen:])
	return &rsa.PublicKey{N: n, E: int(e.Int64())}, nil
}

// RSAKeyBits returns the modulus size in bits of an RSA DNSKEY public key,
// or 0 if the key does not parse. Used for key-size floors.
func RSAKeyBits(pubWire []byte) int {
	pub, err := parseRSAPublic(pubWire)
	if err != nil {
		return 0
	}
	return pub.N.BitLen()
}

// --- ECDSA (RFC 6605) ---

type ecdsaKey struct {
	priv       *ecdsa.PrivateKey
	hash       crypto.Hash
	fieldBytes int
}

func (k *ecdsaKey) sign(data []byte) ([]byte, error) {
	h := k.hash.New()
	h.Write(data)
	r, s, err := ecdsa.Sign(rand.Reader, k.priv, h.Sum(nil))
	if err != nil {
		return nil, err
	}
	sig := make([]byte, 2*k.fieldBytes)
	r.FillBytes(sig[:k.fieldBytes])
	s.FillBytes(sig[k.fieldBytes:])
	return sig, nil
}

func encodeECDSAPublic(pub *ecdsa.PublicKey, fieldBytes int) []byte {
	out := make([]byte, 2*fieldBytes)
	pub.X.FillBytes(out[:fieldBytes])
	pub.Y.FillBytes(out[fieldBytes:])
	return out
}

// --- Ed25519 (RFC 8080) ---

type ed25519Key struct{ priv ed25519.PrivateKey }

func (k ed25519Key) sign(data []byte) ([]byte, error) {
	return ed25519.Sign(k.priv, data), nil
}

// Verify checks sig over data with the given DNSKEY public key material.
// Stand-in algorithms verify via their deterministic construction; the
// caller decides separately whether its SupportSet even attempts this.
func Verify(alg Algorithm, pubWire, data, sig []byte) error {
	switch alg {
	case AlgRSASHA1, AlgRSASHA1NSEC3SHA1, AlgRSASHA256, AlgRSASHA512:
		pub, err := parseRSAPublic(pubWire)
		if err != nil {
			return err
		}
		hash := rsaHash(alg)
		h := hash.New()
		h.Write(data)
		if err := rsa.VerifyPKCS1v15(pub, hash, h.Sum(nil), sig); err != nil {
			return ErrBadSignature
		}
		return nil
	case AlgECDSAP256SHA256, AlgECDSAP384SHA384:
		fieldBytes := 32
		curve := elliptic.P256()
		hash := crypto.SHA256
		if alg == AlgECDSAP384SHA384 {
			fieldBytes, curve, hash = 48, elliptic.P384(), crypto.SHA384
		}
		if len(pubWire) != 2*fieldBytes || len(sig) != 2*fieldBytes {
			return ErrBadPublicKey
		}
		pub := &ecdsa.PublicKey{
			Curve: curve,
			X:     new(big.Int).SetBytes(pubWire[:fieldBytes]),
			Y:     new(big.Int).SetBytes(pubWire[fieldBytes:]),
		}
		h := hash.New()
		h.Write(data)
		r := new(big.Int).SetBytes(sig[:fieldBytes])
		s := new(big.Int).SetBytes(sig[fieldBytes:])
		if !ecdsa.Verify(pub, h.Sum(nil), r, s) {
			return ErrBadSignature
		}
		return nil
	case AlgED25519:
		if len(pubWire) != ed25519.PublicKeySize {
			return ErrBadPublicKey
		}
		if !ed25519.Verify(ed25519.PublicKey(pubWire), data, sig) {
			return ErrBadSignature
		}
		return nil
	case AlgRSAMD5, AlgDSA, AlgDSANSEC3SHA1, AlgECCGOST, AlgED448, AlgUnassigned, AlgReserved:
		return verifyStandin(alg, pubWire, data, sig)
	default:
		return fmt.Errorf("%w: %s", ErrUnsupportedAlgorithm, alg)
	}
}
