package dnssec

import (
	"crypto/sha1"

	"github.com/extended-dns-errors/edelab/internal/dnswire"
)

// NSEC3HashSHA1 is the only NSEC3 hash algorithm assigned (RFC 5155 §11).
const NSEC3HashSHA1 = 1

// MaxNSEC3Iterations is the iteration count above which RFC 9276 §3.2 says
// validators may treat the zone as insecure. The paper's nsec3-iter-200 test
// domain uses 200 iterations — above 0, the recommended value, but below the
// refusal thresholds the tested resolvers applied in practice (none of the
// seven returned an error for it, Table 4 row 25).
const MaxNSEC3Iterations = 500

// NSEC3Hash computes the iterated, salted SHA-1 owner-name hash of RFC 5155
// §5: IH(0) = H(owner_wire || salt); IH(k) = H(IH(k-1) || salt).
func NSEC3Hash(name dnswire.Name, iterations uint16, salt []byte) []byte {
	// Wire form of the owner name, uncompressed, lower case (Name is
	// already canonical lower case).
	wire := nameWire(name)
	h := sha1.New()
	h.Write(wire)
	h.Write(salt)
	digest := h.Sum(nil)
	for i := 0; i < int(iterations); i++ {
		h.Reset()
		h.Write(digest)
		h.Write(salt)
		digest = h.Sum(digest[:0])
	}
	return digest
}

// NSEC3HashName returns the hashed owner label for name within zone:
// base32hex(hash) prepended to the zone apex.
func NSEC3HashName(name, zone dnswire.Name, iterations uint16, salt []byte) dnswire.Name {
	label := dnswire.Base32HexNoPad(NSEC3Hash(name, iterations, salt))
	return zone.Child(label)
}

// nameWire encodes a name in uncompressed wire form.
func nameWire(n dnswire.Name) []byte {
	out := make([]byte, 0, n.WireLength())
	for _, l := range n.Labels() {
		raw := unescape(l)
		out = append(out, byte(len(raw)))
		out = append(out, raw...)
	}
	return append(out, 0)
}

func unescape(l string) []byte {
	var out []byte
	for i := 0; i < len(l); i++ {
		c := l[i]
		if c == '\\' && i+1 < len(l) {
			next := l[i+1]
			if next >= '0' && next <= '9' && i+3 < len(l) {
				v := int(next-'0')*100 + int(l[i+2]-'0')*10 + int(l[i+3]-'0')
				out = append(out, byte(v))
				i += 3
				continue
			}
			out = append(out, next)
			i++
			continue
		}
		out = append(out, c)
	}
	return out
}

// CoversHash reports whether an NSEC3 record with owner hash ownerHash and
// next hash nextHash covers (proves the non-existence of) target hash h.
// Hashes are compared as raw octet strings; the chain wraps around at the
// end of the zone.
func CoversHash(ownerHash, nextHash, h []byte) bool {
	cmp := compareBytes
	switch {
	case cmp(ownerHash, nextHash) < 0:
		return cmp(ownerHash, h) < 0 && cmp(h, nextHash) < 0
	case cmp(ownerHash, nextHash) > 0:
		// Last NSEC3 in the chain: covers everything after owner or
		// before next.
		return cmp(ownerHash, h) < 0 || cmp(h, nextHash) < 0
	default:
		// Single-record chain covers everything except itself.
		return cmp(ownerHash, h) != 0
	}
}

func compareBytes(a, b []byte) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}
