package dnssec

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"

	"github.com/extended-dns-errors/edelab/internal/dnswire"
)

const (
	testInception  = 1700000000
	testExpiration = 1800000000
	testNow        = 1750000000
)

func testRRset(owner string) []dnswire.RR {
	return []dnswire.RR{
		{Name: dnswire.MustName(owner), Class: dnswire.ClassIN, TTL: 300,
			Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.10")}},
		{Name: dnswire.MustName(owner), Class: dnswire.ClassIN, TTL: 300,
			Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.11")}},
	}
}

func mustKey(t *testing.T, alg Algorithm, flags uint16, bits int) *KeyPair {
	t.Helper()
	k, err := GenerateKey(alg, flags, bits)
	if err != nil {
		t.Fatalf("GenerateKey(%s): %v", alg, err)
	}
	return k
}

func signSet(t *testing.T, rrs []dnswire.RR, key *KeyPair, signer string) dnswire.RR {
	t.Helper()
	sig, err := SignRRset(rrs, key, dnswire.MustName(signer), testInception, testExpiration)
	if err != nil {
		t.Fatalf("SignRRset: %v", err)
	}
	return sig
}

func TestSignVerifyAllRealAlgorithms(t *testing.T) {
	algs := []struct {
		alg  Algorithm
		bits int
	}{
		{AlgRSASHA1, 1024},
		{AlgRSASHA1NSEC3SHA1, 1024},
		{AlgRSASHA256, 1024},
		{AlgRSASHA256, 512}, // weak key, must still sign/verify (RFC 5702 allows)
		{AlgRSASHA512, 1024},
		{AlgECDSAP256SHA256, 0},
		{AlgECDSAP384SHA384, 0},
		{AlgED25519, 0},
	}
	for _, c := range algs {
		key := mustKey(t, c.alg, 256, c.bits)
		rrs := testRRset("www.example.com")
		sigRR := signSet(t, rrs, key, "example.com")
		sig := sigRR.Data.(dnswire.RRSIG)
		if err := VerifyRRSIG(sig, rrs, key.DNSKEY()); err != nil {
			t.Errorf("%s (%d bits): verify failed: %v", c.alg, c.bits, err)
		}
		// Tampered data must fail.
		bad := testRRset("www.example.com")
		bad[0].Data = dnswire.A{Addr: netip.MustParseAddr("203.0.113.99")}
		if err := VerifyRRSIG(sig, bad, key.DNSKEY()); err == nil {
			t.Errorf("%s: verify accepted tampered RRset", c.alg)
		}
	}
}

func TestSignVerifyStandinAlgorithms(t *testing.T) {
	for _, alg := range []Algorithm{AlgRSAMD5, AlgDSA, AlgDSANSEC3SHA1, AlgECCGOST, AlgED448, AlgUnassigned, AlgReserved} {
		key := mustKey(t, alg, 257, 0)
		rrs := testRRset("sub.example.org")
		sigRR := signSet(t, rrs, key, "sub.example.org")
		sig := sigRR.Data.(dnswire.RRSIG)
		if err := VerifyRRSIG(sig, rrs, key.DNSKEY()); err != nil {
			t.Errorf("%s: stand-in verify failed: %v", alg, err)
		}
		sig.Signature[0] ^= 0xFF
		if err := VerifyRRSIG(sig, rrs, key.DNSKEY()); err == nil {
			t.Errorf("%s: stand-in verify accepted corrupted signature", alg)
		}
	}
}

func TestStandinSignatureLengths(t *testing.T) {
	if got := standinSigLen(AlgED448); got != 114 {
		t.Errorf("Ed448 stand-in signature length = %d, want 114", got)
	}
	if got := standinSeedLen(AlgED448); got != 57 {
		t.Errorf("Ed448 stand-in public key length = %d, want 57", got)
	}
	if got := standinSigLen(AlgDSA); got != 41 {
		t.Errorf("DSA stand-in signature length = %d, want 41", got)
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	k1 := mustKey(t, AlgECDSAP256SHA256, 256, 0)
	k2 := mustKey(t, AlgECDSAP256SHA256, 256, 0)
	rrs := testRRset("a.example")
	sig := signSet(t, rrs, k1, "example").Data.(dnswire.RRSIG)
	if err := VerifyRRSIG(sig, rrs, k2.DNSKEY()); err == nil {
		t.Error("verify accepted signature from a different key")
	}
}

func TestDSRoundTrip(t *testing.T) {
	for _, dt := range []DigestType{DigestSHA1, DigestSHA256, DigestSHA384, DigestGOST} {
		key := mustKey(t, AlgECDSAP256SHA256, 257, 0)
		owner := dnswire.MustName("secure.example")
		ds, err := CreateDS(owner, key.DNSKEY(), dt)
		if err != nil {
			t.Fatalf("CreateDS(%s): %v", dt, err)
		}
		if !MatchesDS(owner, key.DNSKEY(), ds) {
			t.Errorf("%s: MatchesDS = false for genuine DS", dt)
		}
		// Different owner must not match (owner is part of the digest).
		if MatchesDS(dnswire.MustName("other.example"), key.DNSKEY(), ds) {
			t.Errorf("%s: MatchesDS matched wrong owner", dt)
		}
		// Corrupted digest must not match.
		bad := ds
		bad.Digest = append([]byte(nil), ds.Digest...)
		bad.Digest[0] ^= 1
		if MatchesDS(owner, key.DNSKEY(), bad) {
			t.Errorf("%s: MatchesDS matched corrupted digest", dt)
		}
	}
}

func TestDSDigestLengths(t *testing.T) {
	want := map[DigestType]int{DigestSHA1: 20, DigestSHA256: 32, DigestGOST: 32, DigestSHA384: 48}
	key := mustKey(t, AlgED25519, 257, 0)
	for dt, n := range want {
		ds, err := CreateDS(dnswire.MustName("example."), key.DNSKEY(), dt)
		if err != nil {
			t.Fatal(err)
		}
		if len(ds.Digest) != n {
			t.Errorf("%s digest length = %d, want %d", dt, len(ds.Digest), n)
		}
	}
}

func TestNSEC3HashRFC5155Vector(t *testing.T) {
	// RFC 5155 Appendix A: H(example) with salt aabbccdd, 12 iterations
	// is 0p9mhaveqvm6t7vbl5lop2u3t2rp3tom.
	salt := []byte{0xAA, 0xBB, 0xCC, 0xDD}
	h := NSEC3Hash(dnswire.MustName("example."), 12, salt)
	if got := dnswire.Base32HexNoPad(h); got != "0p9mhaveqvm6t7vbl5lop2u3t2rp3tom" {
		t.Errorf("NSEC3Hash(example.) = %s, want 0p9mhaveqvm6t7vbl5lop2u3t2rp3tom", got)
	}
	h = NSEC3Hash(dnswire.MustName("a.example."), 12, salt)
	if got := dnswire.Base32HexNoPad(h); got != "35mthgpgcu1qg68fab165klnsnk3dpvl" {
		t.Errorf("NSEC3Hash(a.example.) = %s, want 35mthgpgcu1qg68fab165klnsnk3dpvl", got)
	}
}

func TestNSEC3HashIterationsChangeResult(t *testing.T) {
	n := dnswire.MustName("www.example.com")
	h0 := NSEC3Hash(n, 0, nil)
	h1 := NSEC3Hash(n, 1, nil)
	h200 := NSEC3Hash(n, 200, nil)
	if bytes.Equal(h0, h1) || bytes.Equal(h1, h200) {
		t.Error("iteration count did not change NSEC3 hash")
	}
	if len(h0) != 20 {
		t.Errorf("SHA-1 NSEC3 hash length = %d, want 20", len(h0))
	}
}

func TestCoversHash(t *testing.T) {
	a, b, c := []byte{0x10}, []byte{0x50}, []byte{0x90}
	if !CoversHash(a, c, b) {
		t.Error("middle hash not covered")
	}
	if CoversHash(a, b, c) {
		t.Error("hash past next reported covered")
	}
	// Wrap-around at end of chain.
	if !CoversHash(c, a, []byte{0xF0}) {
		t.Error("wrap-around after last owner not covered")
	}
	if !CoversHash(c, a, []byte{0x05}) {
		t.Error("wrap-around before first owner not covered")
	}
	if CoversHash(c, a, []byte{0x50}) {
		t.Error("interior hash wrongly covered by wrap record")
	}
	// Owner itself is never covered.
	if CoversHash(a, c, a) {
		t.Error("owner hash reported covered")
	}
}

func TestTimeStatus(t *testing.T) {
	base := dnswire.RRSIG{Inception: testInception, Expiration: testExpiration}
	if got := TimeStatus(base, testNow); got != SigOK {
		t.Errorf("valid window: %v", got)
	}
	if got := TimeStatus(base, testExpiration+1); got != SigExpired {
		t.Errorf("after expiration: %v", got)
	}
	if got := TimeStatus(base, testInception-1); got != SigNotYetValid {
		t.Errorf("before inception: %v", got)
	}
	swapped := dnswire.RRSIG{Inception: testExpiration, Expiration: testInception}
	if got := TimeStatus(swapped, testNow); got != SigExpiredBeforeValid {
		t.Errorf("expired-before-valid: %v", got)
	}
}

func TestSerialArithmeticWraps(t *testing.T) {
	// Times that straddle the 2038/2106 wrap still compare correctly.
	if !serialLT(0xFFFFFF00, 0x00000100) {
		t.Error("serialLT failed across wrap")
	}
	if serialLT(0x00000100, 0xFFFFFF00) {
		t.Error("serialLT inverted across wrap")
	}
}

func TestCheckRRsetOutcomes(t *testing.T) {
	zsk := mustKey(t, AlgECDSAP256SHA256, 256, 0)
	rrs := testRRset("w.example.net")
	sigRR := signSet(t, rrs, zsk, "example.net")
	keys := []dnswire.DNSKEY{zsk.DNSKEY()}
	sup := StandardSupport()

	t.Run("ok", func(t *testing.T) {
		c := CheckRRset(rrs, []dnswire.RR{sigRR}, keys, testNow, sup)
		if c.Status != SigOK {
			t.Fatalf("Status = %v", c.Status)
		}
		if c.VerifiedBy != zsk.KeyTag() {
			t.Errorf("VerifiedBy = %d, want %d", c.VerifiedBy, zsk.KeyTag())
		}
	})
	t.Run("missing", func(t *testing.T) {
		if c := CheckRRset(rrs, nil, keys, testNow, sup); c.Status != SigMissing {
			t.Errorf("Status = %v", c.Status)
		}
	})
	t.Run("no matching key", func(t *testing.T) {
		other := mustKey(t, AlgECDSAP256SHA256, 256, 0)
		if c := CheckRRset(rrs, []dnswire.RR{sigRR}, []dnswire.DNSKEY{other.DNSKEY()}, testNow, sup); c.Status != SigNoMatchingKey {
			t.Errorf("Status = %v", c.Status)
		}
	})
	t.Run("zone bit cleared key is ignored", func(t *testing.T) {
		k := zsk.DNSKEY()
		k.Flags &^= dnswire.DNSKEYFlagZone
		if c := CheckRRset(rrs, []dnswire.RR{sigRR}, []dnswire.DNSKEY{k}, testNow, sup); c.Status != SigNoMatchingKey {
			t.Errorf("Status = %v", c.Status)
		}
	})
	t.Run("expired", func(t *testing.T) {
		if c := CheckRRset(rrs, []dnswire.RR{sigRR}, keys, testExpiration+100, sup); c.Status != SigExpired {
			t.Errorf("Status = %v", c.Status)
		}
	})
	t.Run("not yet valid", func(t *testing.T) {
		if c := CheckRRset(rrs, []dnswire.RR{sigRR}, keys, testInception-100, sup); c.Status != SigNotYetValid {
			t.Errorf("Status = %v", c.Status)
		}
	})
	t.Run("crypto failure", func(t *testing.T) {
		bad := sigRR
		s := bad.Data.(dnswire.RRSIG)
		s.Signature = append([]byte(nil), s.Signature...)
		s.Signature[10] ^= 0x55
		bad.Data = s
		if c := CheckRRset(rrs, []dnswire.RR{bad}, keys, testNow, sup); c.Status != SigCryptoFailed {
			t.Errorf("Status = %v", c.Status)
		}
	})
	t.Run("unsupported algorithm", func(t *testing.T) {
		ed448 := mustKey(t, AlgED448, 256, 0)
		sig := signSet(t, rrs, ed448, "example.net")
		noEd448 := CloudflareSupport()
		c := CheckRRset(rrs, []dnswire.RR{sig}, []dnswire.DNSKEY{ed448.DNSKEY()}, testNow, noEd448)
		if c.Status != SigUnsupportedAlg {
			t.Errorf("Status = %v", c.Status)
		}
		if len(c.UnsupportedAlgs) != 1 || c.UnsupportedAlgs[0] != AlgED448 {
			t.Errorf("UnsupportedAlgs = %v", c.UnsupportedAlgs)
		}
		// The same zone validates under a support set that has Ed448.
		if c := CheckRRset(rrs, []dnswire.RR{sig}, []dnswire.DNSKEY{ed448.DNSKEY()}, testNow, StandardSupport()); c.Status != SigOK {
			t.Errorf("Ed448-supporting validator: Status = %v", c.Status)
		}
	})
	t.Run("weak RSA key size policy", func(t *testing.T) {
		weak := mustKey(t, AlgRSASHA256, 256, 512)
		sig := signSet(t, rrs, weak, "example.net")
		cf := CloudflareSupport()
		c := CheckRRset(rrs, []dnswire.RR{sig}, []dnswire.DNSKEY{weak.DNSKEY()}, testNow, cf)
		if c.Status != SigUnsupportedAlg {
			t.Errorf("512-bit key under Cloudflare policy: Status = %v", c.Status)
		}
		if c := CheckRRset(rrs, []dnswire.RR{sig}, []dnswire.DNSKEY{weak.DNSKEY()}, testNow, StandardSupport()); c.Status != SigOK {
			t.Errorf("512-bit key under standard policy: Status = %v", c.Status)
		}
	})
	t.Run("one good signature wins over failing ones", func(t *testing.T) {
		expired := dnswire.RRSIG{TypeCovered: dnswire.TypeA, Algorithm: uint8(AlgECDSAP256SHA256),
			Labels: 3, OriginalTTL: 300, Expiration: testInception - 1, Inception: testInception - 100,
			KeyTag: zsk.KeyTag(), SignerName: dnswire.MustName("example.net"), Signature: []byte{1, 2, 3}}
		expRR := dnswire.RR{Name: rrs[0].Name, Class: dnswire.ClassIN, TTL: 300, Data: expired}
		c := CheckRRset(rrs, []dnswire.RR{expRR, sigRR}, keys, testNow, sup)
		if c.Status != SigOK {
			t.Errorf("Status = %v, want SigOK", c.Status)
		}
	})
}

func TestMatchDS(t *testing.T) {
	ksk := mustKey(t, AlgECDSAP256SHA256, 257, 0)
	owner := dnswire.MustName("child.example")
	ds, err := CreateDS(owner, ksk.DNSKEY(), DigestSHA256)
	if err != nil {
		t.Fatal(err)
	}
	keys := []dnswire.DNSKEY{ksk.DNSKEY()}
	sup := StandardSupport()

	m := MatchDS(owner, []dnswire.DS{ds}, keys, sup)
	if !m.TagMatch || !m.DigestMatch {
		t.Errorf("genuine DS: %+v", m)
	}

	badTag := ds
	badTag.KeyTag++
	m = MatchDS(owner, []dnswire.DS{badTag}, keys, sup)
	if m.TagMatch || m.DigestMatch {
		t.Errorf("bad tag: %+v", m)
	}

	badDigest := ds
	badDigest.Digest = append([]byte(nil), ds.Digest...)
	badDigest.Digest[3] ^= 0xFF
	m = MatchDS(owner, []dnswire.DS{badDigest}, keys, sup)
	if !m.TagMatch || m.DigestMatch {
		t.Errorf("bad digest: %+v", m)
	}

	unknownAlg := ds
	unknownAlg.Algorithm = uint8(AlgUnassigned)
	m = MatchDS(owner, []dnswire.DS{unknownAlg}, keys, sup)
	if !m.AllUnknownAlg {
		t.Errorf("unassigned alg: %+v", m)
	}

	unsupDigest := ds
	unsupDigest.DigestType = uint8(DigestUnassigned)
	m = MatchDS(owner, []dnswire.DS{unsupDigest}, keys, sup)
	if !m.AllUnsupportedDigest {
		t.Errorf("unassigned digest: %+v", m)
	}
}

func TestInventory(t *testing.T) {
	ksk := mustKey(t, AlgECDSAP256SHA256, 257, 0)
	zsk := mustKey(t, AlgECDSAP256SHA256, 256, 0)
	nonZone := zsk.DNSKEY()
	nonZone.Flags &^= dnswire.DNSKEYFlagZone
	unassigned := zsk.DNSKEY()
	unassigned.Algorithm = uint8(AlgUnassigned)

	inv := Inventory([]dnswire.DNSKEY{ksk.DNSKEY(), zsk.DNSKEY(), nonZone, unassigned}, StandardSupport())
	if inv.Total != 4 || inv.ZoneKeys != 3 || inv.SEPKeys != 1 || inv.NonSEPKeys != 2 || inv.NonZoneKeys != 1 {
		t.Errorf("Inventory = %+v", inv)
	}
	if inv.UnassignedAlgKeys != 1 || inv.UnsupportedAlgKeys != 1 {
		t.Errorf("Inventory algs = %+v", inv)
	}
}

func TestSortRRsetCanonicalProperty(t *testing.T) {
	f := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		rrs := make([]dnswire.RR, 0, len(vals))
		for _, v := range vals {
			addr := netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
			rrs = append(rrs, dnswire.RR{Name: dnswire.MustName("x.example"),
				Class: dnswire.ClassIN, TTL: 60, Data: dnswire.A{Addr: addr}})
		}
		sorted := SortRRsetCanonical(rrs)
		for i := 1; i < len(sorted); i++ {
			a := sorted[i-1].Data.(dnswire.A).Addr.As4()
			b := sorted[i].Data.(dnswire.A).Addr.As4()
			if bytes.Compare(a[:], b[:]) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSignRRsetRejectsMixedSets(t *testing.T) {
	key := mustKey(t, AlgED25519, 256, 0)
	mixed := []dnswire.RR{
		{Name: dnswire.MustName("a.example"), Class: dnswire.ClassIN, TTL: 1, Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")}},
		{Name: dnswire.MustName("b.example"), Class: dnswire.ClassIN, TTL: 1, Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.2")}},
	}
	if _, err := SignRRset(mixed, key, dnswire.MustName("example"), 0, 1); err == nil {
		t.Error("SignRRset accepted a mixed RRset")
	}
	if _, err := SignRRset(nil, key, dnswire.MustName("example"), 0, 1); err != ErrEmptyRRset {
		t.Errorf("SignRRset(nil) err = %v", err)
	}
}

func TestSignatureCoversTTLNotWireTTL(t *testing.T) {
	// A validator must verify with the RRSIG original TTL even when the
	// cached TTL has counted down.
	key := mustKey(t, AlgED25519, 256, 0)
	rrs := testRRset("ttl.example")
	sigRR := signSet(t, rrs, key, "example")
	aged := make([]dnswire.RR, len(rrs))
	copy(aged, rrs)
	for i := range aged {
		aged[i].TTL = 17 // decayed in cache
	}
	sig := sigRR.Data.(dnswire.RRSIG)
	if err := VerifyRRSIG(sig, aged, key.DNSKEY()); err != nil {
		t.Errorf("verification failed for TTL-decayed RRset: %v", err)
	}
}

func TestRSAKeyBits(t *testing.T) {
	key := mustKey(t, AlgRSASHA256, 256, 512)
	if got := RSAKeyBits(key.DNSKEY().PublicKey); got != 512 {
		t.Errorf("RSAKeyBits = %d, want 512", got)
	}
	if got := RSAKeyBits([]byte{1}); got != 0 {
		t.Errorf("RSAKeyBits(short) = %d, want 0", got)
	}
}

func TestKeyTagDiffersAcrossKeys(t *testing.T) {
	a := mustKey(t, AlgECDSAP256SHA256, 256, 0)
	b := mustKey(t, AlgECDSAP256SHA256, 256, 0)
	if a.KeyTag() == b.KeyTag() {
		t.Skip("key tag collision (possible but ~1/65536); regenerate")
	}
}

func TestSupportSets(t *testing.T) {
	std := StandardSupport()
	if !std.Supports(AlgED448) || !std.Supports(AlgED25519) {
		t.Error("standard support missing Ed448/Ed25519")
	}
	if std.Supports(AlgRSAMD5) || std.Supports(AlgDSA) {
		t.Error("standard support validates RFC 8624-forbidden algorithms")
	}
	cf := CloudflareSupport()
	if cf.Supports(AlgED448) {
		t.Error("Cloudflare support should not validate Ed448 (paper §3.3)")
	}
	if cf.MinRSABits != 1024 {
		t.Errorf("Cloudflare MinRSABits = %d", cf.MinRSABits)
	}
}
