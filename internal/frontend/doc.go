// Package frontend is the serving layer of the reproduction: a caching DNS
// front end that sits between clients and a recursive engine, the component
// whose behaviour dominates the paper's wild-scan caching codes (§4.2 items
// 11–13: Stale Answer, Stale NXDOMAIN Answer, Cached Error).
//
// The recursive resolver in internal/resolver answers one query at a time
// and was built for measurement fidelity, not throughput. A production
// resolver platform — the kind the paper scans — puts a serving layer in
// front of the recursion:
//
//	client → frontend (cache, coalescing, stale, backpressure) → resolver → authorities
//
// This package provides that layer as a netsim.Handler, so it plugs into
// both the simulated network and the real-UDP/TCP front ends in
// internal/authserver. It composes five mechanisms:
//
//   - A sharded message cache (FNV-distributed shards, per-shard lock and
//     LRU) bounding memory and removing the global-mutex serving bottleneck.
//     Answers are TTL-decremented on the way out.
//   - Singleflight query coalescing: M concurrent clients asking the same
//     (qname, qtype, DO) trigger one upstream recursion and M answers.
//   - RFC 8767 serve-stale: when recursion fails (timeout or SERVFAIL), an
//     expired entry within the stale window is served with EDE 3 (Stale
//     Answer) or EDE 19 (Stale NXDOMAIN Answer).
//   - RFC 2308 negative caching plus an error cache: repeated failures are
//     answered from cache with EDE 13 (Cached Error) carrying the
//     Cloudflare-style retry-delay EXTRA-TEXT the paper observed (a bare
//     seconds count such as "114").
//   - Overload protection: a bounded in-flight semaphore and a per-query
//     deadline. Excess load degrades to SERVFAIL + EDE 23 (Network Error)
//     with EXTRA-TEXT saying why, never an unbounded goroutine pile.
//
// All serving decisions are counted in a Metrics registry with a lock-free
// Snapshot accessor, exposed by cmd/edeserver via its -metrics flag.
package frontend
