package frontend

import (
	"strconv"

	"github.com/extended-dns-errors/edelab/internal/telemetry"
)

// Register publishes the frontend counters as views on reg. The atomics and
// the Snapshot API are untouched — the registry reads the same fields
// Snapshot does, at scrape time — so existing Snapshot-based tests and the
// SIGINT stderr dump keep working unchanged.
func (m *Metrics) Register(reg *telemetry.Registry) {
	reg.CounterFunc("edelab_frontend_queries_total",
		"Client queries handled, whatever the outcome.", m.queries.Load)
	cacheEvent := func(event string, load func() uint64) {
		reg.CounterFunc("edelab_frontend_cache_events_total",
			"Serving decisions: fresh hits, misses (upstream recursions), RFC 8767 stale serves, error-cache serves, coalesced waits, evictions.",
			load, telemetry.L("event", event))
	}
	cacheEvent("hit", m.hits.Load)
	cacheEvent("wire_hit", m.wireHits.Load)
	cacheEvent("miss", m.misses.Load)
	cacheEvent("stale_serve", m.staleServes.Load)
	cacheEvent("stale_nx_serve", m.staleNXServes.Load)
	cacheEvent("error_serve", m.cachedErrors.Load)
	cacheEvent("coalesced_wait", m.coalesced.Load)
	cacheEvent("eviction", m.evictions.Load)

	failure := func(event string, load func() uint64) {
		reg.CounterFunc("edelab_frontend_failures_total",
			"Degraded outcomes: overload sheds, per-query deadline hits, malformed client queries, upstream SERVFAILs.",
			load, telemetry.L("event", event))
	}
	failure("overload_shed", m.overloads.Load)
	failure("deadline_exceeded", m.deadlines.Load)
	failure("malformed_query", m.refused.Load)
	failure("upstream_failure", m.upstreamFails.Load)

	reg.GaugeFunc("edelab_frontend_inflight",
		"Concurrent upstream recursions right now.",
		func() float64 { return float64(m.inflight.Load()) })
	reg.GaugeFunc("edelab_frontend_inflight_high_water",
		"Peak concurrent upstream recursions since start.",
		func() float64 { return float64(m.inflightHigh.Load()) })

	for i := 0; i < edeCodeSlots; i++ {
		slot := i
		code := strconv.Itoa(i)
		if i == edeCodeSlots-1 {
			code = "unassigned"
		}
		reg.CounterFunc("edelab_frontend_ede_emissions_total",
			"Client responses carrying each RFC 8914 EDE info-code.",
			m.edeCounts[slot].Load, telemetry.L("code", code))
	}
}

// RegisterMetrics publishes the frontend's counters plus its cache-size
// gauge on reg.
func (f *Frontend) RegisterMetrics(reg *telemetry.Registry) {
	f.metrics.Register(reg)
	reg.GaugeFunc("edelab_frontend_cache_entries",
		"Live message-cache entries.",
		func() float64 { return float64(f.CacheLen()) })
}
