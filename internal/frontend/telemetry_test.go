package frontend

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/extended-dns-errors/edelab/internal/dnswire"
	"github.com/extended-dns-errors/edelab/internal/telemetry"
)

// TestRegistryMirrorsSnapshot drives the frontend through hits, misses,
// stale serves, and failures, then checks that the registry views and the
// pre-existing Snapshot API report the same numbers — the migration contract
// of this PR: one source of truth, two read paths.
func TestRegistryMirrorsSnapshot(t *testing.T) {
	clock := newClock()
	up := &stubUpstream{}
	up.set(func(_ context.Context, qname dnswire.Name, _ dnswire.Type) (*dnswire.Message, error) {
		return positive(qname, 30), nil
	})
	f := New(up, Config{Now: clock.Now, StaleWindow: 24 * time.Hour})
	reg := telemetry.NewRegistry()
	f.RegisterMetrics(reg)

	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := f.HandleDNS(ctx, query("www.example.")); err != nil {
			t.Fatal(err)
		}
	}
	// Expire the entry and kill the upstream: a stale serve.
	clock.Advance(time.Hour)
	up.set(func(context.Context, dnswire.Name, dnswire.Type) (*dnswire.Message, error) {
		return nil, errors.New("authorities unreachable")
	})
	if _, err := f.HandleDNS(ctx, query("www.example.")); err != nil {
		t.Fatal(err)
	}

	snap := f.Metrics().Snapshot()
	check := func(metric string, labels []telemetry.Label, want uint64) {
		t.Helper()
		v, ok := reg.Value(metric, labels...)
		if !ok {
			t.Fatalf("metric %s %v not registered", metric, labels)
		}
		if uint64(v) != want {
			t.Errorf("%s %v = %v, snapshot says %d", metric, labels, v, want)
		}
	}
	check("edelab_frontend_queries_total", nil, snap.Queries)
	check("edelab_frontend_cache_events_total", []telemetry.Label{telemetry.L("event", "hit")}, snap.Hits)
	check("edelab_frontend_cache_events_total", []telemetry.Label{telemetry.L("event", "miss")}, snap.Misses)
	check("edelab_frontend_cache_events_total", []telemetry.Label{telemetry.L("event", "stale_serve")}, snap.StaleServes)
	check("edelab_frontend_failures_total", []telemetry.Label{telemetry.L("event", "upstream_failure")}, snap.UpstreamFailures)
	if snap.Queries != 4 || snap.Hits != 2 || snap.StaleServes != 1 {
		t.Fatalf("unexpected traffic shape: %+v", snap)
	}
	// The stale serve attached EDE 3; the per-code view must see it.
	check("edelab_frontend_ede_emissions_total", []telemetry.Label{telemetry.L("code", "3")}, snap.EDECounts[3])
	if snap.EDECounts[3] == 0 {
		t.Fatal("stale serve did not count EDE 3")
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE edelab_frontend_queries_total counter",
		`edelab_frontend_cache_events_total{event="stale_serve"} 1`,
		"# TYPE edelab_frontend_inflight gauge",
		"edelab_frontend_cache_entries",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestTracedFrontendQuery checks the tracer rides through the frontend's
// context into the upstream exchange, so a sampled client query traces its
// whole recursion.
func TestTracedFrontendQuery(t *testing.T) {
	up := &stubUpstream{}
	up.set(func(ctx context.Context, qname dnswire.Name, _ dnswire.Type) (*dnswire.Message, error) {
		// Stand-in for the resolver: record a span event proving the
		// frontend's fetch context carried the tracer through.
		telemetry.SpanFrom(ctx).Event("upstream recursion ran with the client's tracer")
		return positive(qname, 30), nil
	})
	f := New(up, Config{})
	ctx, tr := telemetry.StartTrace(context.Background(), "traced.example. A")
	if _, err := f.HandleDNS(ctx, query("traced.example.")); err != nil {
		t.Fatal(err)
	}
	if out := tr.Render(); !strings.Contains(out, "upstream recursion ran") {
		t.Fatalf("tracer did not propagate through the frontend:\n%s", out)
	}

	// A second, cached query must trace the frontend's own serving decision.
	ctx2, tr2 := telemetry.StartTrace(context.Background(), "traced.example. A (warm)")
	if _, err := f.HandleDNS(ctx2, query("traced.example.")); err != nil {
		t.Fatal(err)
	}
	if out := tr2.Render(); !strings.Contains(out, "frontend cache: fresh hit") {
		t.Fatalf("warm trace missing the frontend cache decision:\n%s", out)
	}
}
