package frontend

import (
	"context"
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/extended-dns-errors/edelab/internal/authserver"
	"github.com/extended-dns-errors/edelab/internal/dnssec"
	"github.com/extended-dns-errors/edelab/internal/dnswire"
	"github.com/extended-dns-errors/edelab/internal/ede"
	"github.com/extended-dns-errors/edelab/internal/forwarder"
	"github.com/extended-dns-errors/edelab/internal/netsim"
	"github.com/extended-dns-errors/edelab/internal/resolver"
	"github.com/extended-dns-errors/edelab/internal/zone"
)

// chaosWorld is a signed root→com→example.com environment with a real
// resolver upstream, for frontend tests under injected faults.
type chaosWorld struct {
	net *netsim.Network
	res *resolver.Resolver
	fe  *Frontend
	clk *fakeClock
}

func buildChaosWorld(t *testing.T, cfg Config) *chaosWorld {
	t.Helper()
	const (
		inception  = 1700000000
		expiration = 1800000000
		now        = 1750000000
	)
	w := &chaosWorld{net: netsim.New(5)}
	rootAddr := netip.MustParseAddr("198.18.20.1")
	comAddr := netip.MustParseAddr("198.18.20.2")
	exAddr := netip.MustParseAddr("198.18.20.3")

	opts := zone.SignOptions{Inception: inception, Expiration: expiration}

	ex := zone.New(dnswire.MustName("example.com"), 300)
	ex.AddNS(dnswire.MustName("ns1.example.com"), exAddr)
	ex.AddAddress(dnswire.MustName("www.example.com"), netip.MustParseAddr("203.0.113.20"))
	if err := ex.Sign(opts); err != nil {
		t.Fatal(err)
	}

	com := zone.New(dnswire.MustName("com"), 3600)
	com.AddNS(dnswire.MustName("ns1.com"), comAddr)
	com.AddDelegation(dnswire.MustName("example.com"), map[dnswire.Name][]netip.Addr{
		dnswire.MustName("ns1.example.com"): {exAddr},
	})
	exDS, err := ex.DS(dnssec.DigestSHA256)
	if err != nil {
		t.Fatal(err)
	}
	com.AddDS(dnswire.MustName("example.com"), exDS...)
	if err := com.Sign(opts); err != nil {
		t.Fatal(err)
	}

	root := zone.New(dnswire.Root, 86400)
	root.AddNS(dnswire.MustName("a.root-servers.net"), rootAddr)
	root.AddDelegation(dnswire.MustName("com"), map[dnswire.Name][]netip.Addr{
		dnswire.MustName("ns1.com"): {comAddr},
	})
	comDS, err := com.DS(dnssec.DigestSHA256)
	if err != nil {
		t.Fatal(err)
	}
	root.AddDS(dnswire.MustName("com"), comDS...)
	if err := root.Sign(opts); err != nil {
		t.Fatal(err)
	}
	anchor, err := root.DS(dnssec.DigestSHA256)
	if err != nil {
		t.Fatal(err)
	}

	w.net.Register(rootAddr, authserver.New(root))
	w.net.Register(comAddr, authserver.New(com))
	w.net.Register(exAddr, authserver.New(ex))

	w.res = resolver.New(w.net, []netip.Addr{rootAddr}, anchor, resolver.ProfileCloudflare())
	w.res.Now = func() time.Time { return time.Unix(now, 0) }

	w.clk = newClock()
	cfg.Now = w.clk.Now
	w.fe = New(forwarder.ResolverUpstream{R: w.res}, cfg)
	return w
}

// TestChaosServeStaleWhenBackendFlaps drives the satellite requirement:
// when the authoritative backend flaps down, the frontend must fall back to
// its expired cache entry and mark it with EDE 3 (Stale Answer); when the
// backend flaps back up, fresh resolution resumes with no stale marker.
func TestChaosServeStaleWhenBackendFlaps(t *testing.T) {
	w := buildChaosWorld(t, Config{StaleWindow: 24 * time.Hour, QueryTimeout: time.Second})
	ctx := context.Background()

	// Backend up: prime the cache.
	resp, err := w.fe.HandleDNS(ctx, query("www.example.com"))
	if err != nil || resp.RCode != dnswire.RCodeNoError {
		t.Fatalf("prime: rcode=%v err=%v", resp.RCode, err)
	}
	if len(resp.Answer) == 0 {
		t.Fatal("prime returned no answer")
	}

	// The record (TTL 300) expires; the backend flaps down — each endpoint
	// answers one more query, then drops everything (a crash-looping path).
	// The resolver's own cache is flushed so the failure is real.
	w.clk.Advance(10 * time.Minute)
	w.net.SetFaults(netsim.NewFaultPlan(99, netsim.FaultProfile{FlapUp: 1, FlapDown: 1 << 20}))
	w.res.Cache.Flush()

	resp, err = w.fe.HandleDNS(ctx, query("www.example.com"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeNoError {
		t.Fatalf("stale serve: rcode = %s, want NOERROR from stale data", resp.RCode)
	}
	if len(resp.Answer) == 0 {
		t.Fatal("stale serve returned no answer")
	}
	hasEDE(t, resp, ede.CodeStaleAnswer)
	for _, rr := range resp.Answer {
		if rr.TTL != w.fe.cfg.StaleTTL {
			t.Fatalf("stale answer TTL = %d, want the fixed stale TTL %d", rr.TTL, w.fe.cfg.StaleTTL)
		}
	}
	if w.fe.Metrics().Snapshot().StaleServes == 0 {
		t.Fatal("staleServes metric not incremented")
	}

	// Backend back up: resolution recovers, no stale marker.
	w.net.SetFaults(nil)
	w.res.Cache.Flush()
	resp, err = w.fe.HandleDNS(ctx, query("www.example.com"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeNoError {
		t.Fatalf("recovery: rcode = %s", resp.RCode)
	}
	for _, e := range resp.EDEs() {
		if e.InfoCode == uint16(ede.CodeStaleAnswer) {
			t.Fatal("recovered response still marked stale")
		}
	}
}

// TestChaosCoalescedQueriesShareRetriedResult: N concurrent clients asking
// the same question through a lossy network must cost one upstream recursion
// (the flight leader's, which retries through the loss) and all observe that
// same result.
func TestChaosCoalescedQueriesShareRetriedResult(t *testing.T) {
	w := buildChaosWorld(t, Config{QueryTimeout: 2 * time.Second})
	w.net.SetFaults(netsim.NewFaultPlan(7, netsim.FaultProfile{Loss: 0.3}))
	w.res.Transport = &resolver.TransportConfig{
		Retries: 8,
		Sleep:   func(context.Context, time.Duration) {},
	}

	const clients = 16
	var wg sync.WaitGroup
	responses := make([]*dnswire.Message, clients)
	errs := make([]error, clients)
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			responses[i], errs[i] = w.fe.HandleDNS(context.Background(), query("www.example.com"))
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if responses[i].RCode != dnswire.RCodeNoError {
			t.Fatalf("client %d: rcode = %s (retry policy failed under 30%% loss)", i, responses[i].RCode)
		}
		if len(responses[i].Answer) != len(responses[0].Answer) {
			t.Fatalf("client %d observed %d answers, client 0 observed %d — coalesced clients diverged",
				i, len(responses[i].Answer), len(responses[0].Answer))
		}
		if got, want := responses[i].EDECodes(), responses[0].EDECodes(); len(got) != len(want) {
			t.Fatalf("client %d EDEs %v differ from client 0's %v", i, got, want)
		}
	}

	snap := w.fe.Metrics().Snapshot()
	if snap.Misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 upstream recursion for %d coalesced clients", snap.Misses, clients)
	}
	if snap.Hits+snap.CoalescedWaits != clients-1 {
		t.Fatalf("hits=%d coalesced=%d, want them to cover the other %d clients", snap.Hits, snap.CoalescedWaits, clients-1)
	}
}
