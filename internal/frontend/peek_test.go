package frontend

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/extended-dns-errors/edelab/internal/dnswire"
	"github.com/extended-dns-errors/edelab/internal/ede"
)

// twoReplicas builds a pair of frontends over independent upstreams, each
// peeking the other — the minimal cluster.
func twoReplicas(t *testing.T, clock *fakeClock) (a, b *Frontend, upA, upB *stubUpstream) {
	t.Helper()
	upA, upB = &stubUpstream{}, &stubUpstream{}
	cfg := Config{Now: clock.Now}
	cfgA, cfgB := cfg, cfg
	cfgA.Peek = func(k PeekKey, staleOK bool) (*SharedEntry, bool) { return b.PeekShared(k, staleOK) }
	cfgB.Peek = func(k PeekKey, staleOK bool) (*SharedEntry, bool) { return a.PeekShared(k, staleOK) }
	a = New(upA, cfgA)
	b = New(upB, cfgB)
	return a, b, upA, upB
}

// TestPeekServesPeerEntryWithoutRecursing: a miss on one replica rides the
// peer's fresh entry — one recursion total, answers identical.
func TestPeekServesPeerEntryWithoutRecursing(t *testing.T) {
	clock := newClock()
	a, b, upA, upB := twoReplicas(t, clock)
	upA.set(func(_ context.Context, n dnswire.Name, _ dnswire.Type) (*dnswire.Message, error) {
		return positive(n, 300), nil
	})
	upB.set(func(_ context.Context, _ dnswire.Name, _ dnswire.Type) (*dnswire.Message, error) {
		t.Error("replica B recursed despite A holding a fresh entry")
		return nil, errors.New("unreachable")
	})

	respA, err := a.HandleDNS(context.Background(), query("peek.example."))
	if err != nil {
		t.Fatal(err)
	}
	respB, err := b.HandleDNS(context.Background(), query("peek.example."))
	if err != nil {
		t.Fatal(err)
	}
	if upA.calls.Load() != 1 || upB.calls.Load() != 0 {
		t.Fatalf("recursions: A=%d B=%d, want 1/0", upA.calls.Load(), upB.calls.Load())
	}
	wa, _ := respA.Pack()
	wb, _ := respB.Pack()
	wa[0], wa[1], wb[0], wb[1] = 0, 0, 0, 0
	if string(wa) != string(wb) {
		t.Fatalf("peeked answer differs from the peer's:\nA: %x\nB: %x", wa, wb)
	}
	if b.Metrics().Snapshot().Misses != 0 {
		// The peek hit happens inside fetch, before the miss counter: B's
		// metrics must not claim an upstream miss.
		t.Fatalf("B counted an upstream miss on a peek hit")
	}
	// The absorbed entry now serves B locally (no second peek needed):
	// advance past nothing, query again, still no recursion on B.
	if _, err := b.HandleDNS(context.Background(), query("peek.example.")); err != nil {
		t.Fatal(err)
	}
	if upB.calls.Load() != 0 {
		t.Fatal("B recursed on a locally absorbed entry")
	}
}

// TestPeekSharesErrorEntry: fresh error-cache entries peek across, so a
// takeover replica answers with the same EDE 13 retry countdown.
func TestPeekSharesErrorEntry(t *testing.T) {
	clock := newClock()
	a, b, upA, upB := twoReplicas(t, clock)
	upA.set(func(_ context.Context, n dnswire.Name, _ dnswire.Type) (*dnswire.Message, error) {
		return servfail(n), nil
	})
	upB.set(func(_ context.Context, _ dnswire.Name, _ dnswire.Type) (*dnswire.Message, error) {
		t.Error("replica B recursed despite A's fresh error entry")
		return nil, errors.New("unreachable")
	})

	if _, err := a.HandleDNS(context.Background(), query("err.example.")); err != nil {
		t.Fatal(err)
	}
	resp, err := b.HandleDNS(context.Background(), query("err.example."))
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeServFail {
		t.Fatalf("rcode %v, want SERVFAIL", resp.RCode)
	}
	hasEDE(t, resp, ede.CodeCachedError)
}

// TestPeekStaleRescue: when a replica's own recursion fails and it has no
// local stale data, a peer's expired entry still rescues the answer with
// EDE 3.
func TestPeekStaleRescue(t *testing.T) {
	clock := newClock()
	a, b, upA, upB := twoReplicas(t, clock)
	upA.set(func(_ context.Context, n dnswire.Name, _ dnswire.Type) (*dnswire.Message, error) {
		return positive(n, 60), nil
	})
	if _, err := a.HandleDNS(context.Background(), query("stale.example.")); err != nil {
		t.Fatal(err)
	}

	clock.Advance(10 * time.Minute) // A's entry expired, inside the stale window
	upA.set(func(_ context.Context, _ dnswire.Name, _ dnswire.Type) (*dnswire.Message, error) {
		return nil, errors.New("backend blackout")
	})
	upB.set(func(_ context.Context, _ dnswire.Name, _ dnswire.Type) (*dnswire.Message, error) {
		return nil, errors.New("backend blackout")
	})

	resp, err := b.HandleDNS(context.Background(), query("stale.example."))
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeNoError || len(resp.Answer) == 0 {
		t.Fatalf("stale rescue failed: rcode=%v answers=%d", resp.RCode, len(resp.Answer))
	}
	hasEDE(t, resp, ede.CodeStaleAnswer)
}

// TestAbsorbKeepsWireImages: a broadcast entry carries its pre-packed wire
// image, so the receiving replica wire-serves without ever recursing.
func TestAbsorbKeepsWireImages(t *testing.T) {
	clock := newClock()
	upA := &stubUpstream{}
	upA.set(func(_ context.Context, n dnswire.Name, _ dnswire.Type) (*dnswire.Message, error) {
		return positive(n, 300), nil
	})
	a := New(upA, Config{Now: clock.Now})
	b := New(&stubUpstream{}, Config{Now: clock.Now})

	// Warm A twice: first fills, second serves fresh and captures the wire
	// image.
	for i := 0; i < 2; i++ {
		if _, err := a.HandleDNS(context.Background(), query("hot.example.")); err != nil {
			t.Fatal(err)
		}
	}
	pk := PeekKey{Name: dnswire.MustName("hot.example."), Type: dnswire.TypeA, DO: true, CD: false}
	se, ok := a.PeekShared(pk, false)
	if !ok {
		t.Fatal("owner peek missed")
	}
	b.Absorb(se)

	qw, err := query("hot.example.").Pack()
	if err != nil {
		t.Fatal(err)
	}
	wq, ok := dnswire.ScanQuery(qw)
	if !ok {
		t.Fatal("ScanQuery rejected query")
	}
	if _, ok := b.ServeWire(wq, 65535, nil); !ok {
		t.Fatal("absorbed entry did not wire-serve on the receiving replica")
	}
	if b.Metrics().Snapshot().WireHits != 1 {
		t.Fatalf("wire hit not counted on receiver: %+v", b.Metrics().Snapshot())
	}
}
