package frontend

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/extended-dns-errors/edelab/internal/dnswire"
	"github.com/extended-dns-errors/edelab/internal/ede"
)

// fakeClock is a settable serving clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *fakeClock {
	return &fakeClock{t: time.Date(2023, 5, 1, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// stubUpstream scripts the recursive engine behind the frontend.
type stubUpstream struct {
	mu    sync.Mutex
	fn    func(ctx context.Context, qname dnswire.Name, qtype dnswire.Type) (*dnswire.Message, error)
	calls atomic.Int64
}

func (s *stubUpstream) set(fn func(ctx context.Context, qname dnswire.Name, qtype dnswire.Type) (*dnswire.Message, error)) {
	s.mu.Lock()
	s.fn = fn
	s.mu.Unlock()
}

func (s *stubUpstream) Exchange(ctx context.Context, qname dnswire.Name, qtype dnswire.Type) (*dnswire.Message, error) {
	s.calls.Add(1)
	s.mu.Lock()
	fn := s.fn
	s.mu.Unlock()
	return fn(ctx, qname, qtype)
}

// positive builds an upstream answer with the given TTL.
func positive(qname dnswire.Name, ttl uint32) *dnswire.Message {
	return &dnswire.Message{
		Response: true,
		RCode:    dnswire.RCodeNoError,
		Question: []dnswire.Question{{Name: qname, Type: dnswire.TypeA, Class: dnswire.ClassIN}},
		Answer: []dnswire.RR{{
			Name: qname, Class: dnswire.ClassIN, TTL: ttl,
			Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")},
		}},
		OPT: &dnswire.OPT{UDPSize: 1232, DO: true},
	}
}

// nxdomain builds an upstream NXDOMAIN with an RFC 2308 SOA.
func nxdomain(qname dnswire.Name, minimum uint32) *dnswire.Message {
	return &dnswire.Message{
		Response: true,
		RCode:    dnswire.RCodeNXDomain,
		Question: []dnswire.Question{{Name: qname, Type: dnswire.TypeA, Class: dnswire.ClassIN}},
		Authority: []dnswire.RR{{
			Name: dnswire.MustName("example."), Class: dnswire.ClassIN, TTL: minimum,
			Data: dnswire.SOA{
				MName: dnswire.MustName("ns1.example."), RName: dnswire.MustName("hostmaster.example."),
				Serial: 1, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: minimum,
			},
		}},
		OPT: &dnswire.OPT{UDPSize: 1232, DO: true},
	}
}

func servfail(qname dnswire.Name) *dnswire.Message {
	m := &dnswire.Message{
		Response: true,
		RCode:    dnswire.RCodeServFail,
		Question: []dnswire.Question{{Name: qname, Type: dnswire.TypeA, Class: dnswire.ClassIN}},
		OPT:      &dnswire.OPT{UDPSize: 1232, DO: true},
	}
	m.AddEDE(uint16(ede.CodeNoReachableAuthority), "")
	return m
}

func query(name string) *dnswire.Message {
	return dnswire.NewQuery(7, dnswire.MustName(name), dnswire.TypeA)
}

func hasEDE(t *testing.T, m *dnswire.Message, code ede.Code) dnswire.EDEOption {
	t.Helper()
	for _, e := range m.EDEs() {
		if e.InfoCode == uint16(code) {
			return e
		}
	}
	t.Fatalf("response lacks EDE %s; got %v", code, m.EDECodes())
	return dnswire.EDEOption{}
}

func TestFreshHitDecrementsTTL(t *testing.T) {
	clock := newClock()
	up := &stubUpstream{}
	up.set(func(_ context.Context, qname dnswire.Name, _ dnswire.Type) (*dnswire.Message, error) {
		return positive(qname, 100), nil
	})
	f := New(up, Config{Now: clock.Now})

	if _, err := f.HandleDNS(context.Background(), query("www.example.")); err != nil {
		t.Fatal(err)
	}
	clock.Advance(40 * time.Second)
	resp, err := f.HandleDNS(context.Background(), query("www.example."))
	if err != nil {
		t.Fatal(err)
	}
	if got := up.calls.Load(); got != 1 {
		t.Fatalf("upstream calls = %d, want 1 (second query must hit cache)", got)
	}
	if len(resp.Answer) != 1 || resp.Answer[0].TTL != 60 {
		t.Fatalf("TTL not decremented: %+v", resp.Answer)
	}
	snap := f.Metrics().Snapshot()
	if snap.Hits != 1 || snap.Misses != 1 || snap.Queries != 2 {
		t.Fatalf("metrics = %+v, want 1 hit / 1 miss / 2 queries", snap)
	}
}

// TestCoalescing is the acceptance test for singleflight: N concurrent
// identical queries cause exactly one upstream recursion, with the
// piggybacking visible in the metrics snapshot.
func TestCoalescing(t *testing.T) {
	const clients = 32
	release := make(chan struct{})
	up := &stubUpstream{}
	up.set(func(_ context.Context, qname dnswire.Name, _ dnswire.Type) (*dnswire.Message, error) {
		<-release // hold the leader in flight until every client has joined
		return positive(qname, 300), nil
	})
	f := New(up, Config{})

	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := f.HandleDNS(context.Background(), query("popular.example."))
			if err != nil || resp.RCode != dnswire.RCodeNoError || len(resp.Answer) != 1 {
				t.Errorf("coalesced client got %v / %v", resp, err)
			}
		}()
	}
	// Wait until all clients are inside HandleDNS, give the stragglers a
	// beat to join the flight, then let the recursion finish.
	for f.Metrics().Snapshot().Queries < clients {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := up.calls.Load(); got != 1 {
		t.Fatalf("upstream recursions = %d, want exactly 1", got)
	}
	snap := f.Metrics().Snapshot()
	if snap.Misses != 1 {
		t.Fatalf("misses = %d, want 1", snap.Misses)
	}
	if snap.CoalescedWaits != clients-1 {
		t.Fatalf("coalesced waits = %d, want %d", snap.CoalescedWaits, clients-1)
	}
}

// TestServeStaleEDESemantics is the satellite table test: EDE 3 on stale
// positive answers, EDE 19 on stale NXDOMAIN, EDE 13 + retry-delay
// EXTRA-TEXT on error-cache hits — with the code points cross-checked
// against the internal/ede registry.
func TestServeStaleEDESemantics(t *testing.T) {
	// Registry cross-check: the constants this frontend emits must be the
	// registered code points from RFC 8914 Table 1.
	for _, want := range []struct {
		code ede.Code
		num  uint16
		name string
	}{
		{ede.CodeStaleAnswer, 3, "Stale Answer"},
		{ede.CodeCachedError, 13, "Cached Error"},
		{ede.CodeStaleNXDOMAINAnswer, 19, "Stale NXDOMAIN Answer"},
	} {
		if uint16(want.code) != want.num {
			t.Fatalf("code point drifted: %v = %d, want %d", want.code, uint16(want.code), want.num)
		}
		info, ok := ede.Lookup(want.code)
		if !ok || info.Name != want.name {
			t.Fatalf("registry entry for %d = %+v, want %q", want.num, info, want.name)
		}
	}

	cases := []struct {
		label string
		// seed primes the cache (nil to start from an empty cache).
		seed func(qname dnswire.Name) *dnswire.Message
		// advance moves the clock between seeding and the failing query.
		advance  time.Duration
		wantCode ede.Code
		wantRC   dnswire.RCode
	}{
		{
			label:    "stale positive answer serves EDE 3",
			seed:     func(q dnswire.Name) *dnswire.Message { return positive(q, 60) },
			advance:  10 * time.Minute, // past TTL, inside the stale window
			wantCode: ede.CodeStaleAnswer,
			wantRC:   dnswire.RCodeNoError,
		},
		{
			label:    "stale NXDOMAIN serves EDE 19",
			seed:     func(q dnswire.Name) *dnswire.Message { return nxdomain(q, 60) },
			advance:  10 * time.Minute,
			wantCode: ede.CodeStaleNXDOMAINAnswer,
			wantRC:   dnswire.RCodeNXDomain,
		},
		{
			label:    "repeated failure serves EDE 13 from the error cache",
			seed:     nil,
			wantCode: ede.CodeCachedError,
			wantRC:   dnswire.RCodeServFail,
		},
	}

	for _, tc := range cases {
		t.Run(tc.label, func(t *testing.T) {
			clock := newClock()
			up := &stubUpstream{}
			f := New(up, Config{Now: clock.Now, StaleWindow: 24 * time.Hour, ErrorTTL: 30 * time.Second})
			qname := dnswire.MustName("broken.example.")

			if tc.seed != nil {
				up.set(func(_ context.Context, q dnswire.Name, _ dnswire.Type) (*dnswire.Message, error) {
					return tc.seed(q), nil
				})
				if _, err := f.HandleDNS(context.Background(), query(qname.String())); err != nil {
					t.Fatal(err)
				}
				clock.Advance(tc.advance)
			}

			// Authorities go dark.
			up.set(func(_ context.Context, _ dnswire.Name, _ dnswire.Type) (*dnswire.Message, error) {
				return nil, errors.New("all authorities timed out")
			})
			resp, err := f.HandleDNS(context.Background(), query(qname.String()))
			if err != nil {
				t.Fatal(err)
			}
			if tc.seed == nil {
				// First failure populates the error cache and reports the
				// transport failure; the EDE 13 appears on the *next* hit.
				hasEDE(t, resp, ede.CodeNetworkError)
				clock.Advance(5 * time.Second)
				if resp, err = f.HandleDNS(context.Background(), query(qname.String())); err != nil {
					t.Fatal(err)
				}
			}
			if resp.RCode != tc.wantRC {
				t.Fatalf("RCODE = %v, want %v", resp.RCode, tc.wantRC)
			}
			opt := hasEDE(t, resp, tc.wantCode)
			if tc.wantCode == ede.CodeCachedError {
				// The paper's Cloudflare idiom: EXTRA-TEXT is the bare
				// retry delay in seconds.
				secs, err := strconv.Atoi(opt.ExtraText)
				if err != nil || secs <= 0 || secs > 30 {
					t.Fatalf("EDE 13 EXTRA-TEXT = %q, want a retry delay in (0, 30] seconds", opt.ExtraText)
				}
				if secs != 25 {
					t.Fatalf("retry delay = %d, want 25 (30s error TTL minus 5s elapsed)", secs)
				}
			}
			if tc.wantCode == ede.CodeStaleAnswer && len(resp.Answer) == 0 {
				t.Fatal("stale serve lost the answer section")
			}
		})
	}
}

func TestStaleAnswerUsesStaleTTL(t *testing.T) {
	clock := newClock()
	up := &stubUpstream{}
	up.set(func(_ context.Context, q dnswire.Name, _ dnswire.Type) (*dnswire.Message, error) {
		return positive(q, 60), nil
	})
	f := New(up, Config{Now: clock.Now, StaleTTL: 30})
	if _, err := f.HandleDNS(context.Background(), query("a.example.")); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Hour)
	up.set(func(_ context.Context, _ dnswire.Name, _ dnswire.Type) (*dnswire.Message, error) {
		return nil, errors.New("down")
	})
	resp, err := f.HandleDNS(context.Background(), query("a.example."))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answer) != 1 || resp.Answer[0].TTL != 30 {
		t.Fatalf("stale answer TTL = %+v, want fixed 30", resp.Answer)
	}
	if snap := f.Metrics().Snapshot(); snap.StaleServes != 1 {
		t.Fatalf("stale serves = %d, want 1", snap.StaleServes)
	}
}

func TestUpstreamServfailKeepsDiagnosis(t *testing.T) {
	up := &stubUpstream{}
	up.set(func(_ context.Context, q dnswire.Name, _ dnswire.Type) (*dnswire.Message, error) {
		return servfail(q), nil
	})
	f := New(up, Config{})
	resp, err := f.HandleDNS(context.Background(), query("lame.example."))
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeServFail {
		t.Fatalf("RCODE = %v, want SERVFAIL", resp.RCode)
	}
	// The recursion's own diagnosis (EDE 22) is forwarded on first failure.
	hasEDE(t, resp, ede.CodeNoReachableAuthority)
	// And re-emitted alongside EDE 13 from the error cache afterwards.
	resp, _ = f.HandleDNS(context.Background(), query("lame.example."))
	hasEDE(t, resp, ede.CodeNoReachableAuthority)
	hasEDE(t, resp, ede.CodeCachedError)
	if got := up.calls.Load(); got != 1 {
		t.Fatalf("upstream calls = %d, want 1 (error cache must absorb the retry)", got)
	}
}

func TestOverloadShedsWithEDE23(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	up := &stubUpstream{}
	up.set(func(_ context.Context, q dnswire.Name, _ dnswire.Type) (*dnswire.Message, error) {
		close(started)
		<-release
		return positive(q, 60), nil
	})
	f := New(up, Config{MaxInflight: 1})

	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := f.HandleDNS(context.Background(), query("slow.example.")); err != nil {
			t.Errorf("leader: %v", err)
		}
	}()
	<-started

	// The semaphore slot is taken: a different question must be shed, not
	// queued.
	resp, err := f.HandleDNS(context.Background(), query("other.example."))
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeServFail {
		t.Fatalf("RCODE = %v, want SERVFAIL", resp.RCode)
	}
	opt := hasEDE(t, resp, ede.CodeNetworkError)
	if opt.ExtraText == "" {
		t.Fatal("overload shed must say why in EXTRA-TEXT")
	}
	close(release)
	<-done
	if snap := f.Metrics().Snapshot(); snap.Overloads != 1 || snap.InflightHighWater != 1 {
		t.Fatalf("metrics = %+v, want 1 overload and high-water 1", snap)
	}
}

func TestDeadlineExceededThenErrorCached(t *testing.T) {
	up := &stubUpstream{}
	up.set(func(ctx context.Context, _ dnswire.Name, _ dnswire.Type) (*dnswire.Message, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	f := New(up, Config{QueryTimeout: 10 * time.Millisecond})
	resp, err := f.HandleDNS(context.Background(), query("tarpit.example."))
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeServFail {
		t.Fatalf("RCODE = %v, want SERVFAIL", resp.RCode)
	}
	opt := hasEDE(t, resp, ede.CodeNetworkError)
	if opt.ExtraText == "" {
		t.Fatal("deadline failure must carry EXTRA-TEXT")
	}
	if snap := f.Metrics().Snapshot(); snap.DeadlineExceeded != 1 {
		t.Fatalf("deadline count = %d, want 1", snap.DeadlineExceeded)
	}
	// Second query is absorbed by the error cache.
	resp, _ = f.HandleDNS(context.Background(), query("tarpit.example."))
	hasEDE(t, resp, ede.CodeCachedError)
	if got := up.calls.Load(); got != 1 {
		t.Fatalf("upstream calls = %d, want 1", got)
	}
}

func TestNegativeCaching(t *testing.T) {
	clock := newClock()
	up := &stubUpstream{}
	up.set(func(_ context.Context, q dnswire.Name, _ dnswire.Type) (*dnswire.Message, error) {
		return nxdomain(q, 300), nil
	})
	f := New(up, Config{Now: clock.Now})
	if _, err := f.HandleDNS(context.Background(), query("nx.example.")); err != nil {
		t.Fatal(err)
	}
	clock.Advance(4 * time.Minute) // inside the 300s SOA minimum
	resp, err := f.HandleDNS(context.Background(), query("nx.example."))
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("RCODE = %v, want NXDOMAIN", resp.RCode)
	}
	if got := up.calls.Load(); got != 1 {
		t.Fatalf("upstream calls = %d, want 1 (negative cache must hold)", got)
	}
}

func TestEvictionBound(t *testing.T) {
	up := &stubUpstream{}
	up.set(func(_ context.Context, q dnswire.Name, _ dnswire.Type) (*dnswire.Message, error) {
		return positive(q, 300), nil
	})
	f := New(up, Config{Shards: 1, Capacity: 4})
	for i := 0; i < 20; i++ {
		if _, err := f.HandleDNS(context.Background(), query(fmt.Sprintf("h%d.example.", i))); err != nil {
			t.Fatal(err)
		}
	}
	if n := f.CacheLen(); n > 4 {
		t.Fatalf("cache grew to %d entries, capacity is 4", n)
	}
	if snap := f.Metrics().Snapshot(); snap.Evictions != 16 {
		t.Fatalf("evictions = %d, want 16", snap.Evictions)
	}
}

func TestLRUKeepsHotEntries(t *testing.T) {
	up := &stubUpstream{}
	up.set(func(_ context.Context, q dnswire.Name, _ dnswire.Type) (*dnswire.Message, error) {
		return positive(q, 300), nil
	})
	f := New(up, Config{Shards: 1, Capacity: 2})
	hot := query("hot.example.")
	f.HandleDNS(context.Background(), hot)
	f.HandleDNS(context.Background(), query("b.example."))
	f.HandleDNS(context.Background(), hot) // refresh LRU position
	f.HandleDNS(context.Background(), query("c.example."))
	before := up.calls.Load()
	f.HandleDNS(context.Background(), hot)
	if up.calls.Load() != before {
		t.Fatal("hot entry was evicted despite recent use")
	}
}

func TestNonEDNSClientGetsNoOPTOrRRSIG(t *testing.T) {
	up := &stubUpstream{}
	up.set(func(_ context.Context, q dnswire.Name, _ dnswire.Type) (*dnswire.Message, error) {
		m := positive(q, 300)
		m.Answer = append(m.Answer, dnswire.RR{
			Name: q, Class: dnswire.ClassIN, TTL: 300,
			Data: dnswire.RRSIG{TypeCovered: dnswire.TypeA, SignerName: q},
		})
		return m, nil
	})
	f := New(up, Config{})
	q := query("plain.example.")
	q.OPT = nil // classic non-EDNS client
	resp, err := f.HandleDNS(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.OPT != nil {
		t.Fatal("non-EDNS client must not receive an OPT record")
	}
	for _, rr := range resp.Answer {
		if rr.Type() == dnswire.TypeRRSIG {
			t.Fatal("non-DO client must not receive RRSIGs")
		}
	}
}

func TestMalformedQueries(t *testing.T) {
	up := &stubUpstream{}
	up.set(func(_ context.Context, q dnswire.Name, _ dnswire.Type) (*dnswire.Message, error) {
		return positive(q, 300), nil
	})
	f := New(up, Config{})
	q := query("x.example.")
	q.Question = nil
	resp, err := f.HandleDNS(context.Background(), q)
	if err != nil || resp.RCode != dnswire.RCodeFormErr {
		t.Fatalf("no-question query: %v / %v, want FORMERR", resp, err)
	}
	q2 := query("x.example.")
	q2.Opcode = 2 // STATUS
	resp, err = f.HandleDNS(context.Background(), q2)
	if err != nil || resp.RCode != dnswire.RCodeNotImp {
		t.Fatalf("non-QUERY opcode: %v / %v, want NOTIMP", resp, err)
	}
	if up.calls.Load() != 0 {
		t.Fatal("malformed queries must not reach the upstream")
	}
}

// TestConcurrentMixedLoad exercises every serving path at once under the
// race detector: hits, misses, coalescing, failures, stale serves, and
// evictions.
func TestConcurrentMixedLoad(t *testing.T) {
	clock := newClock()
	var failing atomic.Bool
	up := &stubUpstream{}
	up.set(func(_ context.Context, q dnswire.Name, _ dnswire.Type) (*dnswire.Message, error) {
		if failing.Load() {
			return nil, errors.New("authorities dark")
		}
		return positive(q, 60), nil
	})
	f := New(up, Config{Shards: 4, Capacity: 8, MaxInflight: 8, Now: clock.Now})

	names := make([]string, 12)
	for i := range names {
		names[i] = fmt.Sprintf("host%d.example.", i)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := names[(seed+i)%len(names)]
				resp, err := f.HandleDNS(context.Background(), query(n))
				if err != nil || resp == nil {
					t.Errorf("query %s: %v / %v", n, resp, err)
					return
				}
				if i == 100 {
					clock.Advance(2 * time.Minute) // expire everything
					failing.Store(true)
				}
			}
		}(w)
	}
	wg.Wait()
	snap := f.Metrics().Snapshot()
	if snap.Queries != 8*200 {
		t.Fatalf("queries = %d, want %d", snap.Queries, 8*200)
	}
	if snap.Inflight != 0 {
		t.Fatalf("inflight gauge leaked: %d", snap.Inflight)
	}
}

func TestSnapshotEDECounts(t *testing.T) {
	up := &stubUpstream{}
	up.set(func(_ context.Context, _ dnswire.Name, _ dnswire.Type) (*dnswire.Message, error) {
		return nil, errors.New("down")
	})
	f := New(up, Config{})
	f.HandleDNS(context.Background(), query("dead.example.")) // EDE 23
	f.HandleDNS(context.Background(), query("dead.example.")) // EDE 23 + 13
	snap := f.Metrics().Snapshot()
	if snap.EDECounts[uint16(ede.CodeNetworkError)] != 2 {
		t.Fatalf("EDE 23 count = %d, want 2", snap.EDECounts[uint16(ede.CodeNetworkError)])
	}
	if snap.EDECounts[uint16(ede.CodeCachedError)] != 1 {
		t.Fatalf("EDE 13 count = %d, want 1", snap.EDECounts[uint16(ede.CodeCachedError)])
	}
	if s := snap.String(); s == "" {
		t.Fatal("snapshot must render")
	}
}
