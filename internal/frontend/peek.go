package frontend

import (
	"time"

	"github.com/extended-dns-errors/edelab/internal/dnswire"
)

// PeekKey is the exported cache address used by cross-replica peeking: the
// same tuple the internal key carries (question + DO + CD), visible to the
// cluster router without exposing cache internals.
type PeekKey struct {
	Name dnswire.Name
	Type dnswire.Type
	DO   bool
	CD   bool
}

func (pk PeekKey) internal() key {
	return key{name: pk.Name, qtype: pk.Type, do: pk.DO, cd: pk.CD}
}

// SharedEntry is an opaque handle to one immutable cache entry plus its key.
// Because entries are immutable once stored (including their lazily captured
// pre-packed wire images, published via atomic pointers), a SharedEntry can
// be handed to another Frontend in the same process and absorbed into its
// cache without copying: peeking and hot-entry broadcast share the PR 9 wire
// bytes for free.
type SharedEntry struct {
	k key
	e *entry
}

// Key returns the cache address the entry is stored under.
func (se *SharedEntry) Key() PeekKey {
	return PeekKey{Name: se.k.name, Type: se.k.qtype, DO: se.k.do, CD: se.k.cd}
}

// IsError reports whether this is an error-cache entry (the EDE 13 source).
func (se *SharedEntry) IsError() bool { return se.e.isError }

// Fresh reports whether the entry is still inside its TTL at now.
func (se *SharedEntry) Fresh(now time.Time) bool { return now.Before(se.e.expiresAt) }

// PeekShared returns the entry cached under pk, if any, without triggering
// any upstream work. ok is false when nothing usable is cached. With staleOK
// false only fresh entries are returned; with staleOK true an expired
// non-error entry inside the stale window is returned too (the caller serves
// it under RFC 8767 rules). Error-cache entries are shared only while fresh:
// peers re-emit them with the same EDE 13 retry countdown a local hit would
// produce, which is what keeps drain-time answers byte-identical.
func (f *Frontend) PeekShared(pk PeekKey, staleOK bool) (*SharedEntry, bool) {
	k := pk.internal()
	now := f.cfg.Now()
	e, fresh, ok := f.cache.get(k, now, f.cfg.StaleWindow)
	if !ok {
		return nil, false
	}
	if !fresh && (!staleOK || e.isError) {
		return nil, false
	}
	return &SharedEntry{k: k, e: e}, true
}

// Absorb installs a shared entry from a peer frontend into f's cache. The
// entry keeps its original storedAt/expiresAt, so TTL decay and EDE 13 retry
// arithmetic match the peer's (and a single-replica frontend's) answers
// exactly.
func (f *Frontend) Absorb(se *SharedEntry) {
	if se == nil {
		return
	}
	f.cache.put(se.k, se.e)
}

// peekFresh consults the cross-replica peek hook for a fresh entry before
// recursing. A hit is absorbed locally and served as if it were a local
// cache hit — this is what keeps singleflight global across replicas: the
// flight leader on a non-owner replica rides the owner's cache instead of
// starting a second recursion.
func (f *Frontend) peekFresh(k key) *served {
	se, ok := f.cfg.Peek(PeekKey{Name: k.name, Type: k.qtype, DO: k.do, CD: k.cd}, false)
	if !ok || se == nil {
		return nil
	}
	f.cache.put(k, se.e)
	if se.e.isError {
		return &served{mode: modeCachedError, e: se.e}
	}
	return &served{mode: modeFresh, e: se.e}
}

// peekStale consults the peek hook for a peer entry after a failed
// recursion, the cross-replica arm of RFC 8767 rescue. A peer entry that
// turned fresh in the meantime (the owner just refilled it) is served fresh.
func (f *Frontend) peekStale(k key, now time.Time) *served {
	se, ok := f.cfg.Peek(PeekKey{Name: k.name, Type: k.qtype, DO: k.do, CD: k.cd}, true)
	if !ok || se == nil {
		return nil
	}
	f.cache.put(k, se.e)
	switch {
	case se.e.isError:
		if !se.Fresh(now) {
			return nil
		}
		return &served{mode: modeCachedError, e: se.e}
	case se.Fresh(now):
		return &served{mode: modeFresh, e: se.e}
	case se.e.rcode == dnswire.RCodeNXDomain:
		return &served{mode: modeStaleNX, e: se.e}
	default:
		return &served{mode: modeStale, e: se.e}
	}
}
