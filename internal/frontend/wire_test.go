package frontend

import (
	"bytes"
	"context"
	"testing"
	"time"

	"github.com/extended-dns-errors/edelab/internal/dnswire"
	"github.com/extended-dns-errors/edelab/internal/ede"
)

// wireQueryMsg builds a client query in one of the three EDNS classes the
// wire cache distinguishes: no EDNS, EDNS without DO, EDNS with DO.
func wireQueryMsg(id uint16, name string, cd bool, edns, do bool) *dnswire.Message {
	m := &dnswire.Message{
		ID:               id,
		RecursionDesired: true,
		CheckingDisabled: cd,
		Question:         []dnswire.Question{{Name: dnswire.MustName(name), Type: dnswire.TypeA, Class: dnswire.ClassIN}},
	}
	if edns {
		m.OPT = &dnswire.OPT{UDPSize: 1232, DO: do}
	}
	return m
}

// dnssecAnswer is an upstream answer carrying an RRSIG, so the DO/no-DO
// variants of the reply genuinely differ.
func dnssecAnswer(qname dnswire.Name, ttl uint32) *dnswire.Message {
	m := positive(qname, ttl)
	m.AuthenticData = true
	m.Answer = append(m.Answer, dnswire.RR{
		Name: qname, Class: dnswire.ClassIN, TTL: ttl,
		Data: dnswire.RRSIG{
			TypeCovered: dnswire.TypeA, Algorithm: 13, Labels: 2, OriginalTTL: ttl,
			Expiration: 1700000000, Inception: 1690000000, KeyTag: 12345,
			SignerName: dnswire.MustName("example."), Signature: []byte{1, 2, 3, 4},
		},
	})
	return m
}

// serveBoth primes f (if needed), then answers q via the slow path and the
// wire fast path at the same instant, returning both packed responses.
func serveBoth(t *testing.T, f *Frontend, q *dnswire.Message, limit int) (slow []byte, fast []byte, ok bool) {
	t.Helper()
	resp, err := f.HandleDNS(context.Background(), q)
	if err != nil {
		t.Fatalf("HandleDNS: %v", err)
	}
	slow, err = resp.AppendPack(nil)
	if err != nil {
		t.Fatalf("AppendPack: %v", err)
	}
	raw, err := q.Pack()
	if err != nil {
		t.Fatalf("Pack query: %v", err)
	}
	wq, scanned := dnswire.ScanQuery(raw)
	if !scanned {
		t.Fatalf("ScanQuery rejected test query")
	}
	fast, ok = f.ServeWire(wq, limit, nil)
	return slow, fast, ok
}

// TestWireHitByteIdentity is the tentpole correctness gate: for every
// upstream answer shape × CD state × EDNS class, and across entry ages
// (including past the original TTL), the wire fast path must produce
// byte-identical responses to the slow path.
func TestWireHitByteIdentity(t *testing.T) {
	answers := map[string]func(dnswire.Name) *dnswire.Message{
		"positive": func(n dnswire.Name) *dnswire.Message { return positive(n, 100) },
		"dnssec":   func(n dnswire.Name) *dnswire.Message { return dnssecAnswer(n, 100) },
		"nxdomain": func(n dnswire.Name) *dnswire.Message { return nxdomain(n, 300) },
		"withEDE": func(n dnswire.Name) *dnswire.Message {
			m := positive(n, 100)
			m.AddEDE(uint16(ede.CodeStaleAnswer), "upstream note")
			return m
		},
		"shortTTL": func(n dnswire.Name) *dnswire.Message { return positive(n, 5) },
	}
	classes := []struct {
		name     string
		edns, do bool
	}{
		{"noedns", false, false},
		{"edns", true, false},
		{"edns+do", true, true},
	}
	for aname, build := range answers {
		for _, cd := range []bool{false, true} {
			for _, cl := range classes {
				name := aname + "/" + cl.name
				if cd {
					name += "/cd"
				}
				t.Run(name, func(t *testing.T) {
					clock := newClock()
					up := &stubUpstream{}
					up.set(func(_ context.Context, qname dnswire.Name, _ dnswire.Type) (*dnswire.Message, error) {
						return build(qname), nil
					})
					f := New(up, Config{Now: clock.Now})

					q := func(id uint16) *dnswire.Message { return wireQueryMsg(id, "www.example.", cd, cl.edns, cl.do) }
					// Prime: the miss both fills the cache and captures the
					// wire variant for this EDNS class.
					if _, err := f.HandleDNS(context.Background(), q(1)); err != nil {
						t.Fatal(err)
					}
					// Cumulative ages 0s, 3s, 7s: same-second hits, partial
					// decay, and (for the 5s-TTL case) expiry + refetch, so
					// the recapture path is byte-identical too.
					for _, age := range []time.Duration{0, 3 * time.Second, 4 * time.Second} {
						clock.Advance(age)
						slow, fast, ok := serveBoth(t, f, q(0x4242), 0xFFFF)
						if !ok {
							t.Fatalf("age %v: wire fast path declined a fresh compatible hit", age)
						}
						if !bytes.Equal(slow, fast) {
							t.Errorf("age %v: wire fast path diverged from slow path\nslow: %x\nfast: %x", age, slow, fast)
						}
					}
				})
			}
		}
	}
}

// TestWireHitPatchesIDAndRD checks the two header patches: a wire hit must
// carry the asking client's ID and RD bit, not the capturing client's.
func TestWireHitPatchesIDAndRD(t *testing.T) {
	clock := newClock()
	up := &stubUpstream{}
	up.set(func(_ context.Context, qname dnswire.Name, _ dnswire.Type) (*dnswire.Message, error) {
		return positive(qname, 100), nil
	})
	f := New(up, Config{Now: clock.Now})
	if _, err := f.HandleDNS(context.Background(), wireQueryMsg(1, "www.example.", false, true, true)); err != nil {
		t.Fatal(err)
	}

	q := wireQueryMsg(0xABCD, "www.example.", false, true, true)
	q.RecursionDesired = false
	raw, _ := q.Pack()
	wq, ok := dnswire.ScanQuery(raw)
	if !ok {
		t.Fatal("scan rejected")
	}
	out, ok := f.ServeWire(wq, 0xFFFF, nil)
	if !ok {
		t.Fatal("wire fast path declined")
	}
	resp, err := dnswire.Unpack(out)
	if err != nil {
		t.Fatalf("Unpack(wire response): %v", err)
	}
	if resp.ID != 0xABCD {
		t.Errorf("ID = %#x, want 0xABCD", resp.ID)
	}
	if resp.RecursionDesired {
		t.Errorf("RD = true, want false (capturing client had RD set)")
	}
}

// TestWireFallsBack enumerates the declines: miss, stale entry, error-cache
// entry, wrong class, oversized reply, and the uncaptured EDNS class.
func TestWireFallsBack(t *testing.T) {
	clock := newClock()
	up := &stubUpstream{}
	up.set(func(_ context.Context, qname dnswire.Name, _ dnswire.Type) (*dnswire.Message, error) {
		return positive(qname, 100), nil
	})
	f := New(up, Config{Now: clock.Now})
	if _, err := f.HandleDNS(context.Background(), wireQueryMsg(1, "www.example.", false, true, true)); err != nil {
		t.Fatal(err)
	}
	scan := func(m *dnswire.Message) dnswire.WireQuery {
		raw, _ := m.Pack()
		wq, ok := dnswire.ScanQuery(raw)
		if !ok {
			t.Fatal("scan rejected")
		}
		return wq
	}

	if _, ok := f.ServeWire(scan(wireQueryMsg(2, "other.example.", false, true, true)), 0xFFFF, nil); ok {
		t.Error("served a cache miss from the wire path")
	}
	if _, ok := f.ServeWire(scan(wireQueryMsg(2, "www.example.", false, false, false)), 0xFFFF, nil); ok {
		t.Error("served the never-captured no-EDNS class")
	}
	wq := scan(wireQueryMsg(2, "www.example.", false, true, true))
	if _, ok := f.ServeWire(wq, 40, nil); ok {
		t.Error("served a reply larger than the limit (truncation is the slow path's job)")
	}
	wrongClass := wq
	wrongClass.Class = dnswire.ClassCH
	if _, ok := f.ServeWire(wrongClass, 0xFFFF, nil); ok {
		t.Error("served a non-IN class query")
	}
	clock.Advance(101 * time.Second) // past TTL: entry is stale now
	if _, ok := f.ServeWire(wq, 0xFFFF, nil); ok {
		t.Error("served a stale entry from the wire path (stale serves carry EDE 3)")
	}

	// Error-cache entries are never wire-served: their EDE 13 retry text
	// changes every second.
	up.set(func(_ context.Context, qname dnswire.Name, _ dnswire.Type) (*dnswire.Message, error) {
		return nil, context.DeadlineExceeded
	})
	f2 := New(up, Config{Now: clock.Now, StaleWindow: -1})
	if _, err := f2.HandleDNS(context.Background(), wireQueryMsg(1, "err.example.", false, true, true)); err != nil {
		t.Fatal(err)
	}
	if _, ok := f2.ServeWire(scan(wireQueryMsg(2, "err.example.", false, true, true)), 0xFFFF, nil); ok {
		t.Error("served an error-cache entry from the wire path")
	}
}

// TestWireHitAllocGate is the CI alloc gate: a full fast-path serve —
// scanning the raw query plus ServeWire into a ready buffer — stays within
// 2 allocations (the qname cache-key string is the only mandatory one).
func TestWireHitAllocGate(t *testing.T) {
	clock := newClock()
	up := &stubUpstream{}
	up.set(func(_ context.Context, qname dnswire.Name, _ dnswire.Type) (*dnswire.Message, error) {
		return dnssecAnswer(qname, 300), nil
	})
	f := New(up, Config{Now: clock.Now})
	if _, err := f.HandleDNS(context.Background(), wireQueryMsg(1, "www.example.", false, true, true)); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Second) // force the TTL patch loop to run
	raw, _ := wireQueryMsg(0x7777, "www.example.", false, true, true).Pack()
	dst := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(500, func() {
		wq, ok := dnswire.ScanQuery(raw)
		if !ok {
			t.Fatal("scan rejected")
		}
		if _, ok := f.ServeWire(wq, 0xFFFF, dst); !ok {
			t.Fatal("wire fast path declined")
		}
	})
	if allocs > 2 {
		t.Errorf("wire hit path allocates %.1f times per op, want <= 2", allocs)
	}
}

// TestWireHitCountsMetrics checks a wire hit is indistinguishable from a
// slow-path hit in the serving metrics, and additionally counted under
// WireHits and the entry's EDE emissions.
func TestWireHitCountsMetrics(t *testing.T) {
	clock := newClock()
	up := &stubUpstream{}
	up.set(func(_ context.Context, qname dnswire.Name, _ dnswire.Type) (*dnswire.Message, error) {
		m := positive(qname, 100)
		m.AddEDE(uint16(ede.CodeStaleAnswer), "carried through")
		return m, nil
	})
	f := New(up, Config{Now: clock.Now})
	if _, err := f.HandleDNS(context.Background(), wireQueryMsg(1, "www.example.", false, true, true)); err != nil {
		t.Fatal(err)
	}
	raw, _ := wireQueryMsg(2, "www.example.", false, true, true).Pack()
	wq, _ := dnswire.ScanQuery(raw)
	if _, ok := f.ServeWire(wq, 0xFFFF, nil); !ok {
		t.Fatal("wire fast path declined")
	}
	snap := f.Metrics().Snapshot()
	if snap.Queries != 2 || snap.Hits != 1 || snap.WireHits != 1 {
		t.Errorf("metrics = %d queries / %d hits / %d wire hits, want 2/1/1",
			snap.Queries, snap.Hits, snap.WireHits)
	}
	if got := snap.EDECounts[uint16(ede.CodeStaleAnswer)]; got != 2 {
		t.Errorf("EDE 3 emissions = %d, want 2 (slow-path fill + wire hit)", got)
	}
}
