package frontend

import (
	"encoding/binary"
	"time"

	"github.com/extended-dns-errors/edelab/internal/dnswire"
)

// Wire fast path: cache entries carry pre-packed response bytes plus a
// table of TTL byte-offsets, so a compatible query (same question tuple,
// CD bit, DO bit, and EDNS class as an earlier client) is answered by
// copying the cached wire into the caller's buffer and patching three
// things in place — the 2-byte ID, the RD header bit, and each TTL —
// with no message rebuild and no re-pack.
//
// Variants are captured lazily from the slow path: the first fresh hit of
// each EDNS class packs its (already correct) reply once with TTL-offset
// recording and publishes it on the entry. Byte identity with the slow
// path is therefore by construction, and the TTL patch reproduces the
// slow path's decay arithmetic exactly: a stored TTL is
// max(orig-baseAge, 1), and patching by delta = age-baseAge yields
// max(orig-age, 1) in every case.

// Variant indices: one pre-packed image per EDNS class, because an EDNS
// client's reply carries an OPT (and any entry EDEs) while a pre-EDNS
// client's must not.
const (
	wirePlain = 0
	wireEDNS  = 1
)

// wireVariant is one immutable pre-packed response image.
type wireVariant struct {
	// wire is the packed reply as some slow-path client received it
	// (its ID, RD bit, and TTL decay — all patched per hit).
	wire []byte
	// ttlOffs are the message-relative offsets of every RR TTL field.
	ttlOffs []uint16
	// baseAge is the entry age, in whole seconds, at capture time.
	baseAge uint32
	// edeCodes are the EDE info-codes the reply carries, re-counted on
	// every wire hit so emission metrics match the slow path.
	edeCodes []uint16
}

// ServeWire answers a scanned query from the cached wire image, appending
// the response to dst. ok=false means no compatible image exists (miss,
// stale, error-cache entry, not captured yet, or the image exceeds limit)
// and the caller must fall back to the full path. The fast path performs
// no allocations beyond what dst's capacity forces.
func (f *Frontend) ServeWire(q dnswire.WireQuery, limit int, dst []byte) ([]byte, bool) {
	if q.Class != dnswire.ClassIN {
		return nil, false
	}
	k := key{name: q.Name, qtype: q.Type, do: q.DO, cd: q.CD}
	now := f.cfg.Now()
	e, fresh, ok := f.cache.get(k, now, f.cfg.StaleWindow)
	if !ok || !fresh || e.isError {
		return nil, false
	}
	idx := wirePlain
	if q.HasEDNS {
		idx = wireEDNS
	}
	v := e.wires[idx].Load()
	if v == nil || len(v.wire) > limit {
		// Not captured yet, or the reply would need the truncation ladder:
		// both are the slow path's job.
		return nil, false
	}

	f.metrics.queries.Add(1)
	f.metrics.hits.Add(1)
	f.metrics.wireHits.Add(1)
	for _, c := range v.edeCodes {
		f.metrics.countEDE(c)
	}

	base := len(dst)
	out := append(dst, v.wire...)
	msg := out[base:]
	binary.BigEndian.PutUint16(msg, q.ID)
	const rdBit = 0x01 // low bit of flags byte 2
	if q.RD {
		msg[2] |= rdBit
	} else {
		msg[2] &^= rdBit
	}
	if age := entryAge(e, now); age > v.baseAge {
		delta := age - v.baseAge
		for _, off := range v.ttlOffs {
			ttl := binary.BigEndian.Uint32(msg[off:])
			if ttl > delta {
				ttl -= delta
			} else {
				ttl = 1
			}
			binary.BigEndian.PutUint32(msg[off:], ttl)
		}
	}
	return out, true
}

// maybeCaptureWire publishes out as the entry's pre-packed image for its
// EDNS class, once. Called from reply() for fresh non-error serves only —
// stale replies and error-cache replies carry per-hit dynamic content
// (fixed stale TTLs aside, the EDE 13 retry countdown changes every
// second) and are never wire-served.
func (f *Frontend) maybeCaptureWire(e *entry, out *dnswire.Message, now time.Time) {
	idx := wirePlain
	if out.OPT != nil {
		idx = wireEDNS
	}
	if e.wires[idx].Load() != nil {
		return
	}
	wire, offs, err := out.AppendPackTTLOffsets(nil, nil)
	if err != nil {
		return
	}
	v := &wireVariant{wire: wire, ttlOffs: offs, baseAge: entryAge(e, now)}
	if out.OPT != nil {
		for _, o := range out.EDEs() {
			v.edeCodes = append(v.edeCodes, o.InfoCode)
		}
	}
	e.wires[idx].Store(v)
}

// entryAge is the whole seconds since the entry was stored, matching the
// slow path's age arithmetic in reply().
func entryAge(e *entry, now time.Time) uint32 {
	if d := now.Sub(e.storedAt); d > 0 {
		return uint32(d / time.Second)
	}
	return 0
}
