package frontend

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"github.com/extended-dns-errors/edelab/internal/dnswire"
)

// key addresses one cached message: the question tuple plus the DO bit,
// since a DNSSEC-requesting client receives a different message (RRSIGs,
// AD) than a plain one, and the CD bit, since a checking-disabled client
// receives answers a validating client must never be served.
type key struct {
	name  dnswire.Name
	qtype dnswire.Type
	do    bool
	cd    bool
}

// shard hashes the key with FNV-1a and maps it onto one of n shards
// (n must be a power of two).
func (k key) shard(n int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k.name); i++ {
		h ^= uint64(k.name[i])
		h *= prime64
	}
	h ^= uint64(k.qtype)
	h *= prime64
	if k.do {
		h ^= 0xff
		h *= prime64
	}
	if k.cd {
		h ^= 0xcd
		h *= prime64
	}
	return int(h & uint64(n-1))
}

// entry is one cached serving outcome. Entries are immutable once stored:
// readers copy the RR slice headers before decrementing TTLs, and the RR
// Data values are never mutated by any serving path.
type entry struct {
	answer    []dnswire.RR
	authority []dnswire.RR
	rcode     dnswire.RCode
	secure    bool
	// edes are the upstream's EDE options at fill time, re-emitted on hits.
	edes []dnswire.EDEOption
	// isError marks an error-cache entry (the EDE 13 source).
	isError   bool
	storedAt  time.Time
	expiresAt time.Time

	// wires holds the pre-packed response images for the wire fast path,
	// one per EDNS class (wirePlain / wireEDNS), captured lazily from the
	// first slow-path reply of each class. nil until captured; immutable
	// once published. See wire.go.
	wires [2]atomic.Pointer[wireVariant]
}

// lruItem is what the per-shard LRU list holds.
type lruItem struct {
	k key
	e *entry
}

// cacheShard is one lock domain: a map for lookup plus an LRU list for the
// capacity bound. Front of the list is most recently used.
type cacheShard struct {
	mu    sync.Mutex
	items map[key]*list.Element
	lru   *list.List
}

// Cache is the sharded serving cache. Unlike the resolver's global-mutex
// cache (internal/resolver/cache.go), lookups here contend only within one
// FNV-selected shard, and total size is bounded with per-shard LRU
// eviction.
type Cache struct {
	shards   []cacheShard
	perShard int
	// onEvict, when set, observes capacity evictions (wired to Metrics).
	onEvict func()
}

// NewCache builds a cache with the given shard count (rounded up to a power
// of two, minimum 1) and total capacity in entries (minimum one per shard).
func NewCache(shards, capacity int) *Cache {
	n := 1
	for n < shards {
		n <<= 1
	}
	per := capacity / n
	if per < 1 {
		per = 1
	}
	c := &Cache{shards: make([]cacheShard, n), perShard: per}
	for i := range c.shards {
		c.shards[i].items = make(map[key]*list.Element)
		c.shards[i].lru = list.New()
	}
	return c
}

// get returns the entry for k and whether it is fresh. Entries past the
// stale window are dropped. A fresh hit refreshes LRU position; a stale hit
// does not (stale entries should not outcompete live ones for capacity).
func (c *Cache) get(k key, now time.Time, staleWindow time.Duration) (e *entry, fresh bool, ok bool) {
	s := &c.shards[k.shard(len(c.shards))]
	s.mu.Lock()
	defer s.mu.Unlock()
	el, found := s.items[k]
	if !found {
		return nil, false, false
	}
	ent := el.Value.(*lruItem).e
	switch {
	case now.Before(ent.expiresAt):
		s.lru.MoveToFront(el)
		return ent, true, true
	case now.Before(ent.expiresAt.Add(staleWindow)):
		return ent, false, true
	default:
		s.lru.Remove(el)
		delete(s.items, k)
		return nil, false, false
	}
}

// put stores e under k, evicting the shard's least recently used entry when
// the per-shard capacity is exceeded.
func (c *Cache) put(k key, e *entry) {
	s := &c.shards[k.shard(len(c.shards))]
	s.mu.Lock()
	if el, found := s.items[k]; found {
		el.Value.(*lruItem).e = e
		s.lru.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.items[k] = s.lru.PushFront(&lruItem{k: k, e: e})
	var evicted bool
	if s.lru.Len() > c.perShard {
		back := s.lru.Back()
		s.lru.Remove(back)
		delete(s.items, back.Value.(*lruItem).k)
		evicted = true
	}
	s.mu.Unlock()
	if evicted && c.onEvict != nil {
		c.onEvict()
	}
}

// Len reports the number of cached entries across all shards.
func (c *Cache) Len() int {
	total := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		total += len(c.shards[i].items)
		c.shards[i].mu.Unlock()
	}
	return total
}

// Flush clears every shard.
func (c *Cache) Flush() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.items = make(map[key]*list.Element)
		s.lru.Init()
		s.mu.Unlock()
	}
}
