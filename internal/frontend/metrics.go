package frontend

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"github.com/extended-dns-errors/edelab/internal/ede"
)

// edeCodeSlots is the size of the fixed per-code counter array: the 30
// registered codes (0–29) plus one overflow slot for anything unassigned.
const edeCodeSlots = 31

// Metrics counts the frontend's serving decisions. All fields are atomics so
// the hot path never takes a lock for accounting; Snapshot reads them
// individually (the snapshot is per-counter consistent, not cross-counter
// atomic, which is all a stats endpoint needs).
type Metrics struct {
	queries       atomic.Uint64
	hits          atomic.Uint64
	wireHits      atomic.Uint64
	misses        atomic.Uint64
	staleServes   atomic.Uint64
	staleNXServes atomic.Uint64
	cachedErrors  atomic.Uint64
	coalesced     atomic.Uint64
	evictions     atomic.Uint64
	overloads     atomic.Uint64
	deadlines     atomic.Uint64
	refused       atomic.Uint64
	upstreamFails atomic.Uint64

	inflight     atomic.Int64
	inflightHigh atomic.Int64

	edeCounts [edeCodeSlots]atomic.Uint64
}

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	// Queries counts every query handled, whatever the outcome.
	Queries uint64
	// Hits counts answers served from a fresh cache entry (including
	// fresh negative and error-cache entries).
	Hits uint64
	// WireHits counts the subset of Hits answered by the wire fast path
	// (pre-packed bytes patched in place, no message rebuild).
	WireHits uint64
	// Misses counts queries that triggered an upstream recursion.
	Misses uint64
	// StaleServes / StaleNXServes count RFC 8767 answers (EDE 3 / EDE 19).
	StaleServes   uint64
	StaleNXServes uint64
	// CachedErrorServes counts error-cache answers (EDE 13).
	CachedErrorServes uint64
	// CoalescedWaits counts queries that piggybacked on another client's
	// in-flight recursion instead of starting their own.
	CoalescedWaits uint64
	// Evictions counts cache entries displaced by the capacity bound.
	Evictions uint64
	// Overloads counts queries shed because the in-flight bound was hit.
	Overloads uint64
	// DeadlineExceeded counts upstream recursions cut off by the per-query
	// deadline.
	DeadlineExceeded uint64
	// Malformed counts queries rejected before resolution (FORMERR/NOTIMP).
	Malformed uint64
	// UpstreamFailures counts recursions that ended in SERVFAIL or error.
	UpstreamFailures uint64
	// Inflight and InflightHighWater report current and peak concurrent
	// upstream recursions.
	Inflight          int64
	InflightHighWater int64
	// EDECounts maps INFO-CODE → number of responses that carried it.
	// Unassigned codes are merged under key 65535.
	EDECounts map[uint16]uint64
}

// countEDE records the emission of one EDE option on a client response.
func (m *Metrics) countEDE(code uint16) {
	slot := int(code)
	if slot >= edeCodeSlots-1 {
		slot = edeCodeSlots - 1
	}
	m.edeCounts[slot].Add(1)
}

// enterInflight registers one upstream recursion, maintaining the high-water
// mark, and returns the leave function.
func (m *Metrics) enterInflight() func() {
	cur := m.inflight.Add(1)
	for {
		high := m.inflightHigh.Load()
		if cur <= high || m.inflightHigh.CompareAndSwap(high, cur) {
			break
		}
	}
	return func() { m.inflight.Add(-1) }
}

// Snapshot copies the counters.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Queries:           m.queries.Load(),
		Hits:              m.hits.Load(),
		WireHits:          m.wireHits.Load(),
		Misses:            m.misses.Load(),
		StaleServes:       m.staleServes.Load(),
		StaleNXServes:     m.staleNXServes.Load(),
		CachedErrorServes: m.cachedErrors.Load(),
		CoalescedWaits:    m.coalesced.Load(),
		Evictions:         m.evictions.Load(),
		Overloads:         m.overloads.Load(),
		DeadlineExceeded:  m.deadlines.Load(),
		Malformed:         m.refused.Load(),
		UpstreamFailures:  m.upstreamFails.Load(),
		Inflight:          m.inflight.Load(),
		InflightHighWater: m.inflightHigh.Load(),
	}
	for i := 0; i < edeCodeSlots; i++ {
		if n := m.edeCounts[i].Load(); n > 0 {
			if s.EDECounts == nil {
				s.EDECounts = make(map[uint16]uint64)
			}
			key := uint16(i)
			if i == edeCodeSlots-1 {
				key = 65535
			}
			s.EDECounts[key] = n
		}
	}
	return s
}

// String renders the snapshot as the block cmd/edeserver prints on SIGINT.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "queries            %d\n", s.Queries)
	fmt.Fprintf(&b, "cache hits         %d\n", s.Hits)
	fmt.Fprintf(&b, "  wire fast path   %d\n", s.WireHits)
	fmt.Fprintf(&b, "cache misses       %d\n", s.Misses)
	fmt.Fprintf(&b, "stale answers      %d\n", s.StaleServes)
	fmt.Fprintf(&b, "stale nxdomain     %d\n", s.StaleNXServes)
	fmt.Fprintf(&b, "cached errors      %d\n", s.CachedErrorServes)
	fmt.Fprintf(&b, "coalesced waits    %d\n", s.CoalescedWaits)
	fmt.Fprintf(&b, "evictions          %d\n", s.Evictions)
	fmt.Fprintf(&b, "overload sheds     %d\n", s.Overloads)
	fmt.Fprintf(&b, "deadline exceeded  %d\n", s.DeadlineExceeded)
	fmt.Fprintf(&b, "malformed queries  %d\n", s.Malformed)
	fmt.Fprintf(&b, "upstream failures  %d\n", s.UpstreamFailures)
	fmt.Fprintf(&b, "inflight high-water %d\n", s.InflightHighWater)
	if len(s.EDECounts) > 0 {
		codes := make([]int, 0, len(s.EDECounts))
		for c := range s.EDECounts {
			codes = append(codes, int(c))
		}
		sort.Ints(codes)
		b.WriteString("ede emissions:\n")
		for _, c := range codes {
			fmt.Fprintf(&b, "  %-36s %d\n", ede.Code(c).String(), s.EDECounts[uint16(c)])
		}
	}
	return b.String()
}
