package frontend

import "sync"

// flightGroup coalesces concurrent work for the same key: the first caller
// runs fn, later callers block until it finishes and share the result. This
// is the query-deduplication a busy resolver needs when a popular name
// expires and thousands of clients ask for it in the same round trip — one
// recursion, not thousands.
//
// A minimal reimplementation of golang.org/x/sync/singleflight (the module
// has no external dependencies), returning the shared result plus whether
// the caller was a waiter rather than the leader.
type flightGroup struct {
	mu      sync.Mutex
	flights map[key]*flight
}

type flight struct {
	wg  sync.WaitGroup
	val *served
}

// do runs fn once per key at a time. shared is true for callers that waited
// on another caller's execution.
func (g *flightGroup) do(k key, fn func() *served) (v *served, shared bool) {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = make(map[key]*flight)
	}
	if f, ok := g.flights[k]; ok {
		g.mu.Unlock()
		f.wg.Wait()
		return f.val, true
	}
	f := &flight{}
	f.wg.Add(1)
	g.flights[k] = f
	g.mu.Unlock()

	f.val = fn()
	f.wg.Done()

	g.mu.Lock()
	delete(g.flights, k)
	g.mu.Unlock()
	return f.val, false
}
