package frontend

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"github.com/extended-dns-errors/edelab/internal/dnswire"
	"github.com/extended-dns-errors/edelab/internal/ede"
	"github.com/extended-dns-errors/edelab/internal/forwarder"
	"github.com/extended-dns-errors/edelab/internal/netsim"
	"github.com/extended-dns-errors/edelab/internal/telemetry"
)

// Config tunes the frontend. The zero value gets production-ish defaults
// from New.
type Config struct {
	// Shards is the cache shard count (rounded up to a power of two).
	Shards int
	// Capacity bounds the total number of cached entries.
	Capacity int
	// MaxInflight bounds concurrent upstream recursions; excess queries are
	// shed with SERVFAIL + EDE 23 rather than piling up goroutines.
	MaxInflight int
	// QueryTimeout is the per-query upstream deadline.
	QueryTimeout time.Duration
	// StaleWindow is how long past expiry an entry may be served stale
	// (RFC 8767 §5 suggests 1–3 days).
	StaleWindow time.Duration
	// StaleTTL is the TTL stamped on stale answers (RFC 8767 §5.2
	// recommends 30 seconds).
	StaleTTL uint32
	// ErrorTTL is the error-cache lifetime (RFC 2308 §7 caps it at 5
	// minutes); it is also the retry delay surfaced in EDE 13 EXTRA-TEXT.
	ErrorTTL time.Duration
	// NegativeTTL is the RFC 2308 negative-cache lifetime used when the
	// authority section carries no SOA to derive one from.
	NegativeTTL time.Duration
	// MaxTTL caps how long any positive answer is cached.
	MaxTTL time.Duration
	// Now is the serving clock (injectable for deterministic tests).
	Now func() time.Time
	// Peek, when set, is the cross-replica cache hook (cluster serving): the
	// flight leader consults it on a miss before recursing (staleOK false)
	// and again after a failed recursion (staleOK true). A hit is absorbed
	// into the local cache and served as if local, so one recursion per
	// question happens cluster-wide — singleflight stays global.
	Peek func(k PeekKey, staleOK bool) (*SharedEntry, bool)
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 64
	}
	if c.Capacity <= 0 {
		c.Capacity = 1 << 16
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 512
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 5 * time.Second
	}
	if c.StaleWindow < 0 {
		c.StaleWindow = 0
	} else if c.StaleWindow == 0 {
		c.StaleWindow = 24 * time.Hour
	}
	if c.StaleTTL == 0 {
		c.StaleTTL = 30
	}
	if c.ErrorTTL <= 0 {
		c.ErrorTTL = 30 * time.Second
	}
	if c.NegativeTTL <= 0 {
		c.NegativeTTL = 60 * time.Second
	}
	if c.MaxTTL <= 0 {
		c.MaxTTL = 6 * time.Hour
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// serveMode says which path produced an answer; it drives EDE attachment.
type serveMode int

const (
	modeFresh serveMode = iota
	modeStale
	modeStaleNX
	modeCachedError
	modeFailure
	modeOverload
)

// served is the client-agnostic outcome of one cache/upstream round,
// shared across coalesced waiters. The entry is immutable.
type served struct {
	mode serveMode
	e    *entry
}

// Frontend is the caching serving layer: a netsim.Handler over any
// forwarder.Upstream (usually a resolver.Resolver via
// forwarder.ResolverUpstream).
type Frontend struct {
	upstream forwarder.Upstream
	cfg      Config
	cache    *Cache
	flights  flightGroup
	sem      chan struct{}
	metrics  Metrics
}

// New builds a frontend over up.
func New(up forwarder.Upstream, cfg Config) *Frontend {
	cfg = cfg.withDefaults()
	f := &Frontend{
		upstream: up,
		cfg:      cfg,
		cache:    NewCache(cfg.Shards, cfg.Capacity),
		sem:      make(chan struct{}, cfg.MaxInflight),
	}
	f.cache.onEvict = func() { f.metrics.evictions.Add(1) }
	return f
}

// Metrics returns the live counter registry.
func (f *Frontend) Metrics() *Metrics { return &f.metrics }

// CacheLen reports the number of cached entries.
func (f *Frontend) CacheLen() int { return f.cache.Len() }

// FlushCache clears the cache (for tests and operator tooling).
func (f *Frontend) FlushCache() { f.cache.Flush() }

// HandleDNS implements netsim.Handler: answer from cache when possible,
// coalesce upstream recursions otherwise, degrade to stale or cached-error
// data when recursion fails, and shed load when over the in-flight bound.
func (f *Frontend) HandleDNS(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	f.metrics.queries.Add(1)

	if q.Opcode != dnswire.OpcodeQuery {
		f.metrics.refused.Add(1)
		r := q.Reply()
		r.RCode = dnswire.RCodeNotImp
		return r, nil
	}
	if len(q.Question) != 1 {
		f.metrics.refused.Add(1)
		r := q.Reply()
		r.RCode = dnswire.RCodeFormErr
		return r, nil
	}

	k := key{name: q.Question[0].Name, qtype: q.Question[0].Type, do: q.DO(), cd: q.CheckingDisabled}
	now := f.cfg.Now()
	sp := telemetry.SpanFrom(ctx)

	if e, fresh, ok := f.cache.get(k, now, f.cfg.StaleWindow); ok && fresh {
		f.metrics.hits.Add(1)
		if e.isError {
			f.metrics.cachedErrors.Add(1)
			if sp != nil {
				sp.Eventf("frontend cache: fresh error-cache hit for %s %s (rcode %s)", k.name, k.qtype, e.rcode)
			}
			return f.reply(q, k, &served{mode: modeCachedError, e: e}, now), nil
		}
		if sp != nil {
			sp.Eventf("frontend cache: fresh hit for %s %s (stored %s ago)", k.name, k.qtype, now.Sub(e.storedAt).Round(time.Second))
		}
		return f.reply(q, k, &served{mode: modeFresh, e: e}, now), nil
	}

	// Miss (or stale entry needing a refresh attempt): coalesce so M
	// concurrent clients asking the same question cost one recursion.
	sv, shared := f.flights.do(k, func() *served { return f.fetch(ctx, k) })
	if shared {
		f.metrics.coalesced.Add(1)
		if sp != nil {
			sp.Event("frontend: coalesced onto an in-flight recursion")
		}
	}
	switch sv.mode {
	case modeStale:
		f.metrics.staleServes.Add(1)
		if sp != nil {
			sp.Eventf("frontend: serving stale answer for %s %s (RFC 8767)", k.name, k.qtype)
		}
	case modeStaleNX:
		f.metrics.staleNXServes.Add(1)
		if sp != nil {
			sp.Eventf("frontend: serving stale NXDOMAIN for %s %s", k.name, k.qtype)
		}
	case modeCachedError:
		f.metrics.cachedErrors.Add(1)
		if sp != nil {
			sp.Eventf("frontend: serving cached error for %s %s", k.name, k.qtype)
		}
	}
	return f.reply(q, k, sv, now), nil
}

// fetch is the flight leader's path: run one bounded upstream recursion and
// fold the outcome into the cache, degrading to stale or error-cache data
// on failure.
func (f *Frontend) fetch(ctx context.Context, k key) *served {
	// Cross-replica peek: before paying for a recursion (or an overload
	// shed), ask the cluster whether the owning replica already has a fresh
	// answer for this question.
	if f.cfg.Peek != nil {
		if sv := f.peekFresh(k); sv != nil {
			return sv
		}
	}
	// Overload shed: never queue behind MaxInflight running recursions.
	// Stale data still rescues the response when available — shedding is a
	// resolution failure like any other (RFC 8767 §4).
	select {
	case f.sem <- struct{}{}:
	default:
		f.metrics.overloads.Add(1)
		now := f.cfg.Now()
		if sv := f.staleFor(k, now); sv != nil {
			return sv
		}
		return &served{mode: modeOverload, e: &entry{
			rcode: dnswire.RCodeServFail,
			edes: []dnswire.EDEOption{{
				InfoCode:  uint16(ede.CodeNetworkError),
				ExtraText: fmt.Sprintf("resolver overloaded: %d recursions in flight", f.cfg.MaxInflight),
			}},
			storedAt: now,
		}}
	}
	defer func() { <-f.sem }()
	leave := f.metrics.enterInflight()
	defer leave()
	f.metrics.misses.Add(1)

	uctx, cancel := context.WithTimeout(ctx, f.cfg.QueryTimeout)
	resp, err := forwarder.Exchange(uctx, f.upstream, k.name, k.qtype,
		forwarder.Options{CheckingDisabled: k.cd})
	hitDeadline := errors.Is(uctx.Err(), context.DeadlineExceeded)
	cancel()

	now := f.cfg.Now()
	if err == nil && resp != nil && resp.RCode != dnswire.RCodeServFail {
		return &served{mode: modeFresh, e: f.store(k, resp, now)}
	}

	// Recursion failed: timeout, transport error, or upstream SERVFAIL.
	f.metrics.upstreamFails.Add(1)
	if hitDeadline {
		f.metrics.deadlines.Add(1)
	}
	if sv := f.staleFor(k, now); sv != nil {
		return sv
	}
	if f.cfg.Peek != nil {
		if sv := f.peekStale(k, now); sv != nil {
			return sv
		}
	}
	return &served{mode: modeFailure, e: f.storeError(k, resp, err, hitDeadline, now)}
}

// staleFor returns a stale serving outcome for k when an expired non-error
// entry is still inside the stale window.
func (f *Frontend) staleFor(k key, now time.Time) *served {
	e, fresh, ok := f.cache.get(k, now, f.cfg.StaleWindow)
	if !ok || fresh || e.isError {
		return nil
	}
	if e.rcode == dnswire.RCodeNXDomain {
		return &served{mode: modeStaleNX, e: e}
	}
	return &served{mode: modeStale, e: e}
}

// store fills the cache from a successful upstream response and returns the
// entry. RR slices are copied so later client-side re-heading (or resolver
// cache internals) cannot corrupt the cached message.
func (f *Frontend) store(k key, resp *dnswire.Message, now time.Time) *entry {
	e := &entry{
		answer:    append([]dnswire.RR(nil), resp.Answer...),
		authority: append([]dnswire.RR(nil), resp.Authority...),
		rcode:     resp.RCode,
		secure:    resp.AuthenticData,
		edes:      append([]dnswire.EDEOption(nil), resp.EDEs()...),
		storedAt:  now,
	}
	e.expiresAt = now.Add(f.ttlFor(e))
	f.cache.put(k, e)
	return e
}

// ttlFor derives the cache lifetime: minimum answer TTL for positive
// responses, RFC 2308 SOA-minimum for negative ones.
func (f *Frontend) ttlFor(e *entry) time.Duration {
	if len(e.answer) > 0 {
		ttl := e.answer[0].TTL
		for _, rr := range e.answer[1:] {
			if rr.TTL < ttl {
				ttl = rr.TTL
			}
		}
		d := time.Duration(ttl) * time.Second
		if d < time.Second {
			d = time.Second
		}
		if d > f.cfg.MaxTTL {
			d = f.cfg.MaxTTL
		}
		return d
	}
	// Negative response (NXDOMAIN or NODATA): TTL is min(SOA TTL, SOA
	// MINIMUM) per RFC 2308 §3/§5, capped by MaxTTL; without an SOA the
	// configured default applies.
	for _, rr := range e.authority {
		if soa, ok := rr.Data.(dnswire.SOA); ok {
			d := time.Duration(min(rr.TTL, soa.Minimum)) * time.Second
			if d < time.Second {
				d = time.Second
			}
			if d > f.cfg.MaxTTL {
				d = f.cfg.MaxTTL
			}
			return d
		}
	}
	return f.cfg.NegativeTTL
}

// storeError fills the error cache so repeated failures are answered
// locally with EDE 13 until ErrorTTL passes.
func (f *Frontend) storeError(k key, resp *dnswire.Message, err error, hitDeadline bool, now time.Time) *entry {
	e := &entry{
		rcode:    dnswire.RCodeServFail,
		isError:  true,
		storedAt: now,
	}
	switch {
	case resp != nil:
		// Upstream answered SERVFAIL: keep its diagnosis (the EDEs the
		// recursion attached) for re-emission on cache hits.
		e.edes = append([]dnswire.EDEOption(nil), resp.EDEs()...)
	case hitDeadline:
		e.edes = []dnswire.EDEOption{{
			InfoCode:  uint16(ede.CodeNetworkError),
			ExtraText: fmt.Sprintf("upstream recursion exceeded the %s query deadline", f.cfg.QueryTimeout),
		}}
	default:
		text := "upstream resolver unreachable"
		if err != nil {
			text = "upstream resolver unreachable: " + err.Error()
		}
		e.edes = []dnswire.EDEOption{{InfoCode: uint16(ede.CodeNetworkError), ExtraText: text}}
	}
	e.expiresAt = now.Add(f.cfg.ErrorTTL)
	f.cache.put(k, e)
	return e
}

// reply builds this client's response from a serving outcome: fresh copies
// of the RR slices (TTL-adjusted), EDEs re-emitted plus the mode's own code,
// and EDNS only when the client used EDNS.
func (f *Frontend) reply(q *dnswire.Message, k key, sv *served, now time.Time) *dnswire.Message {
	out := q.Reply()
	out.RecursionAvailable = true
	e := sv.e
	out.RCode = e.rcode

	switch sv.mode {
	case modeFresh:
		age := uint32(now.Sub(e.storedAt) / time.Second)
		out.Answer = adjustTTL(e.answer, age, 0, k.do)
		out.Authority = adjustTTL(e.authority, age, 0, k.do)
		out.AuthenticData = e.secure && k.do
	case modeStale, modeStaleNX:
		// RFC 8767 §5.2: stale data goes out with a short fixed TTL so
		// downstream caches do not hold it long.
		out.Answer = adjustTTL(e.answer, 0, f.cfg.StaleTTL, k.do)
		out.Authority = adjustTTL(e.authority, 0, f.cfg.StaleTTL, k.do)
	}

	for _, o := range e.edes {
		f.addEDE(out, o.InfoCode, o.ExtraText)
	}
	switch sv.mode {
	case modeStale:
		f.addEDE(out, uint16(ede.CodeStaleAnswer), "")
	case modeStaleNX:
		f.addEDE(out, uint16(ede.CodeStaleNXDOMAINAnswer), "")
	case modeCachedError:
		// The paper's Cloudflare idiom: EXTRA-TEXT is the bare retry
		// delay in seconds ("114") until the error cache entry expires.
		retry := int64(e.expiresAt.Sub(now) / time.Second)
		if retry < 1 {
			retry = 1
		}
		f.addEDE(out, uint16(ede.CodeCachedError), strconv.FormatInt(retry, 10))
	}
	if sv.mode == modeFresh && !e.isError {
		f.maybeCaptureWire(e, out, now)
	}
	return out
}

// addEDE attaches code to out when the client can receive it (EDNS present)
// and counts the emission.
func (f *Frontend) addEDE(out *dnswire.Message, code uint16, text string) {
	if out.OPT == nil {
		return
	}
	out.AddEDE(code, text)
	f.metrics.countEDE(code)
}

// adjustTTL copies rrs with TTLs decremented by age (floor 1) or pinned to
// fixed when nonzero, dropping DNSSEC signature records for non-DO clients.
func adjustTTL(rrs []dnswire.RR, age, fixed uint32, do bool) []dnswire.RR {
	if len(rrs) == 0 {
		return nil
	}
	out := make([]dnswire.RR, 0, len(rrs))
	for _, rr := range rrs {
		if !do && rr.Type() == dnswire.TypeRRSIG {
			continue
		}
		switch {
		case fixed != 0:
			rr.TTL = fixed
		case rr.TTL > age:
			rr.TTL -= age
		default:
			rr.TTL = 1
		}
		out = append(out, rr)
	}
	return out
}

var _ netsim.Handler = (*Frontend)(nil)
