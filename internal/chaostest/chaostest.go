// Package chaostest replays the paper's 63-case testbed (Table 4) under a
// matrix of fault schedules, turning the reproduced table into a regression
// oracle for the resolver's transport policy.
//
// Each schedule pairs a netsim fault profile with a resolver transport
// configuration. Recoverable schedules (bounded loss, bounded latency,
// truncation, duplication/reordering, flapping) must leave every one of the
// 441 Table 4 cells untouched — the retry/backoff policy absorbs the faults.
// Unrecoverable schedules (total blackout, total garbling) must degrade to
// the documented codes: EDE 22 (No Reachable Authority) for silence, EDE 23
// (Network Error) for observable corruption.
//
// Every run is a pure function of a single uint64 seed: the fault plan draws
// from per-endpoint PCG streams, latency is virtual, backoff sleeps are
// no-ops, and the 63×7 matrix is walked sequentially — so two runs with the
// same seed render byte-identical reports.
package chaostest

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/extended-dns-errors/edelab/internal/dnswire"
	"github.com/extended-dns-errors/edelab/internal/ede"
	"github.com/extended-dns-errors/edelab/internal/netsim"
	"github.com/extended-dns-errors/edelab/internal/resolver"
	"github.com/extended-dns-errors/edelab/internal/testbed"
)

// Schedule is one chaos scenario: a fault spec for the whole simulated
// network plus the transport policy the resolvers run with.
type Schedule struct {
	// Name labels the schedule in reports and test output.
	Name string
	// Faults is a ParseFaultProfile spec applied to every endpoint; ""
	// means a perfect network.
	Faults string
	// Transport is the resolver transport policy; nil means the legacy
	// single-shot behaviour (one 2s attempt per server).
	Transport *resolver.TransportConfig
	// Recoverable declares that the Table 4 matrix must be invariant under
	// this schedule. Unrecoverable schedules instead degrade to documented
	// reachability codes.
	Recoverable bool
}

// noSleep replaces the backoff clock in chaos runs: pacing is policy under
// test, not wall time.
func noSleep(context.Context, time.Duration) {}

// Schedules returns the standard chaos matrix: the fault-free baseline, five
// recoverable impairments, and two unrecoverable failure modes.
func Schedules() []Schedule {
	retry := func(retries int) *resolver.TransportConfig {
		return &resolver.TransportConfig{
			Retries: retries,
			Backoff: 10 * time.Millisecond,
			Sleep:   noSleep,
		}
	}
	return []Schedule{
		{Name: "fault-free", Faults: "", Transport: nil, Recoverable: true},
		// 20% i.i.d. loss: six attempts drive per-server failure odds to
		// 0.2^6 = 6.4e-5, far below one expected flip across 441 cells.
		{Name: "lossy", Faults: "loss=0.2", Transport: retry(6), Recoverable: true},
		// Bounded latency (max 150ms) sits well inside the 2s per-attempt
		// timeout; retries cover nothing here, selection does.
		{Name: "latency", Faults: "lat=100ms,jitter=50ms", Transport: retry(3), Recoverable: true},
		// Every datagram truncated: the RFC 7766 stream fallback must carry
		// the whole matrix.
		{Name: "truncate", Faults: "trunc", Transport: nil, Recoverable: true},
		// Duplication advances server state; reordering delivers answers to
		// the wrong question — the sanity-check retry absorbs both.
		{Name: "dup-reorder", Faults: "dup=0.1,reorder=0.1", Transport: retry(6), Recoverable: true},
		// Flapping 6-up/2-down: at most two consecutive drops per endpoint,
		// under the six-attempt budget.
		{Name: "flap", Faults: "flap=6:2", Transport: retry(6), Recoverable: true},
		// Total silence: every cell must degrade to the no-reachable-
		// authority outcome (Cloudflare: EDE 22 + 9, the DNSKEY being
		// unobtainable at the signed root).
		{Name: "blackout", Faults: "loss=1", Transport: retry(2), Recoverable: false},
		// Total corruption: an observable network error, not silence —
		// Cloudflare: EDE 23 alone.
		{Name: "garble", Faults: "garble=1", Transport: retry(2), Recoverable: false},
	}
}

// ParseScheduleFaults validates and parses a schedule's fault spec.
func ParseScheduleFaults(s Schedule) (netsim.FaultProfile, error) {
	return netsim.ParseFaultProfile(s.Faults)
}

// Run builds a fresh testbed, applies the schedule's faults seeded with
// seed, and replays all 63 cases through all seven vendor profiles.
func Run(ctx context.Context, seed uint64, sch Schedule) (*Result, error) {
	tb, err := testbed.Build()
	if err != nil {
		return nil, err
	}
	if sch.Faults != "" {
		fp, err := netsim.ParseFaultProfile(sch.Faults)
		if err != nil {
			return nil, fmt.Errorf("schedule %s: %w", sch.Name, err)
		}
		tb.Net.SetFaults(netsim.NewFaultPlan(seed, fp))
	}

	profiles := resolver.AllProfiles()
	names := make([]string, len(profiles))
	for i, p := range profiles {
		names[i] = p.Name
	}
	m := ede.NewMatrix(names)
	for _, p := range profiles {
		r := tb.NewResolver(p)
		r.Transport = sch.Transport
		for _, c := range tb.Cases {
			res := r.Resolve(ctx, c.Query, dnswire.TypeA)
			var set ede.Set
			for _, code := range res.Codes() {
				set = append(set, ede.Code(code))
			}
			m.Record(c.Label, p.Name, set)
		}
	}
	return &Result{Schedule: sch, Seed: seed, Matrix: m, Stats: tb.Net.Stats()}, nil
}

// Result is one completed chaos run.
type Result struct {
	Schedule Schedule
	Seed     uint64
	Matrix   *ede.Matrix
	Stats    netsim.Stats
}

// Report renders the run as a canonical, byte-stable text document: header,
// one line per (case, system) cell in sorted order, and the network counters.
// Two runs with the same seed must produce identical bytes.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule: %s\n", r.Schedule.Name)
	fmt.Fprintf(&b, "faults: %q\n", r.Schedule.Faults)
	fmt.Fprintf(&b, "seed: %d\n", r.Seed)
	fmt.Fprintf(&b, "cells: %d\n", len(r.Matrix.Cases)*len(r.Matrix.Systems))
	b.WriteString("\n")

	cases := append([]string(nil), r.Matrix.Cases...)
	sort.Strings(cases)
	systems := append([]string(nil), r.Matrix.Systems...)
	for _, c := range cases {
		for _, sys := range systems {
			fmt.Fprintf(&b, "%s\t%s\t%s\n", c, sys, r.Matrix.Results[c][sys])
		}
	}

	s := r.Stats
	fmt.Fprintf(&b, "\nqueries: %d answered: %d lost: %d truncated: %d garbled: %d duplicated: %d reordered: %d\n",
		s.Queries, s.Answered, s.Lost, s.Truncated, s.Garbled, s.Duplicated, s.Reordered)
	return b.String()
}

// Diff compares two runs cell by cell and returns a sorted list of
// human-readable mismatches ("case/system: a=... b=..."). The cell
// comparison itself lives in ede.Matrix.Diff so the scenario engine's
// verdict layer shares it.
func Diff(a, b *Result) []string {
	return a.Matrix.Diff(b.Matrix, a.Schedule.Name, b.Schedule.Name)
}
