package chaostest

import (
	"context"
	"fmt"
	"testing"

	"github.com/extended-dns-errors/edelab/internal/dnswire"
	"github.com/extended-dns-errors/edelab/internal/resolver"
	"github.com/extended-dns-errors/edelab/internal/testbed"
)

// TestChaosFlushedCacheReproducesTable4 is the delegation cache's
// determinism oracle: running every Table 4 case through a resolver, then
// flushing every cache (answers, zone keys, AND delegations) and running
// them again must produce byte-identical per-case outcomes. If cut replay
// leaked or dropped a condition, the warm-state first pass and the cold
// second pass would diverge.
func TestChaosFlushedCacheReproducesTable4(t *testing.T) {
	tb, err := testbed.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, p := range resolver.AllProfiles() {
		r := tb.NewResolver(p)
		pass := func() []string {
			out := make([]string, 0, len(tb.Cases))
			for _, c := range tb.Cases {
				res := r.Resolve(ctx, c.Query, dnswire.TypeA)
				out = append(out, fmt.Sprintf("%s rcode=%s ad=%t codes=%v",
					c.Label, res.Msg.RCode, res.Msg.AuthenticData, res.Codes()))
			}
			return out
		}
		first := pass()
		if r.Cache.DelegationLen() == 0 {
			t.Fatalf("%s: no delegations cached during the Table 4 run", p.Name)
		}
		r.Cache.Flush()
		if r.Cache.DelegationLen() != 0 {
			t.Fatalf("%s: Flush left delegations behind", p.Name)
		}
		second := pass()
		for i := range first {
			if first[i] != second[i] {
				t.Errorf("%s: flushed-cache divergence:\n  warm: %s\n  cold: %s", p.Name, first[i], second[i])
			}
		}
	}
}
