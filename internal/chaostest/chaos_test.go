package chaostest

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/extended-dns-errors/edelab/internal/ede"
	"github.com/extended-dns-errors/edelab/internal/resolver"
	"github.com/extended-dns-errors/edelab/internal/testbed"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// chaosSeed is the suite's replay seed. Change it and every schedule replays
// a different (but equally deterministic) fault history.
const chaosSeed = 20230515

func scheduleByName(t *testing.T, name string) Schedule {
	t.Helper()
	for _, s := range Schedules() {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("no schedule named %q", name)
	return Schedule{}
}

// fullMatrix reports whether the extended (multi-seed) chaos matrix was
// requested — the nightly CI mode.
func fullMatrix() bool { return os.Getenv("CHAOS_MATRIX") == "full" }

func seeds() []uint64 {
	if fullMatrix() {
		return []uint64{chaosSeed, 7, 99991}
	}
	return []uint64{chaosSeed}
}

// TestChaosFaultFreeMatchesGolden pins the fault-free replay to the
// committed Table 4 golden report and to the paper's expected matrix —
// 441/441 cells.
func TestChaosFaultFreeMatchesGolden(t *testing.T) {
	res, err := Run(context.Background(), chaosSeed, scheduleByName(t, "fault-free"))
	if err != nil {
		t.Fatal(err)
	}

	// Every cell must match the paper's ground truth.
	tb, err := testbed.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := tb.ExpectedMatrix()
	cells, mismatches := 0, 0
	for _, c := range want.Cases {
		for _, sys := range want.Systems {
			cells++
			if !res.Matrix.Results[c][sys].Equal(want.Results[c][sys]) {
				mismatches++
				t.Errorf("cell %s/%s: got %s, want %s", c, sys, res.Matrix.Results[c][sys], want.Results[c][sys])
			}
		}
	}
	if cells != 441 {
		t.Fatalf("matrix has %d cells, want 441", cells)
	}
	t.Logf("Table 4: %d/%d cells match", cells-mismatches, cells)

	golden := filepath.Join("testdata", "table4.golden")
	got := res.Report()
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	wantBytes, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(wantBytes) {
		t.Error("fault-free report differs from testdata/table4.golden (run with -update after intentional changes)")
	}
}

// TestChaosRecoverableInvariance replays the matrix under every recoverable
// schedule and requires cell-for-cell equality with the fault-free run — in
// particular, zero regressions to EDE 22 (the all-timeout collapse the
// retry/backoff policy exists to prevent).
func TestChaosRecoverableInvariance(t *testing.T) {
	for _, seed := range seeds() {
		base, err := Run(context.Background(), seed, scheduleByName(t, "fault-free"))
		if err != nil {
			t.Fatal(err)
		}
		for _, sch := range Schedules() {
			if !sch.Recoverable || sch.Name == "fault-free" {
				continue
			}
			sch := sch
			t.Run(sch.Name, func(t *testing.T) {
				res, err := Run(context.Background(), seed, sch)
				if err != nil {
					t.Fatal(err)
				}
				if diffs := Diff(base, res); len(diffs) != 0 {
					for _, d := range diffs {
						t.Errorf("seed %d: %s", seed, d)
					}
					t.Fatalf("seed %d: %d/441 cells changed under recoverable schedule %s", seed, len(diffs), sch.Name)
				}
				// Explicitly: no cell gained EDE 22 that did not have it.
				for _, c := range base.Matrix.Cases {
					for _, sys := range base.Matrix.Systems {
						had := base.Matrix.Results[c][sys].Contains(ede.CodeNoReachableAuthority)
						has := res.Matrix.Results[c][sys].Contains(ede.CodeNoReachableAuthority)
						if has && !had {
							t.Errorf("seed %d: %s/%s regressed to EDE 22 under %s", seed, c, sys, sch.Name)
						}
					}
				}
			})
		}
	}
}

// TestChaosUnrecoverableDegradation pins the failure modes: total silence
// degrades every cell to No Reachable Authority (EDE 22, plus DNSKEY Missing
// at the signed root for Cloudflare), while total garbling is an observable
// Network Error (EDE 23) — never misreported as silence.
func TestChaosUnrecoverableDegradation(t *testing.T) {
	t.Run("blackout", func(t *testing.T) {
		res, err := Run(context.Background(), chaosSeed, scheduleByName(t, "blackout"))
		if err != nil {
			t.Fatal(err)
		}
		want := ede.Set{ede.CodeDNSKEYMissing, ede.CodeNoReachableAuthority}
		for _, c := range res.Matrix.Cases {
			got := res.Matrix.Results[c]["Cloudflare"]
			if !got.Equal(want) {
				t.Errorf("blackout %s/Cloudflare: got %s, want %s", c, got, want)
			}
			for _, sys := range res.Matrix.Systems {
				if sys == "Cloudflare" {
					continue
				}
				if s := res.Matrix.Results[c][sys]; len(s) != 0 {
					t.Errorf("blackout %s/%s: got %s, want no EDE (bare SERVFAIL)", c, sys, s)
				}
			}
		}
	})
	t.Run("garble", func(t *testing.T) {
		res, err := Run(context.Background(), chaosSeed, scheduleByName(t, "garble"))
		if err != nil {
			t.Fatal(err)
		}
		want := ede.Set{ede.CodeNetworkError}
		for _, c := range res.Matrix.Cases {
			got := res.Matrix.Results[c]["Cloudflare"]
			if !got.Equal(want) {
				t.Errorf("garble %s/Cloudflare: got %s, want %s", c, got, want)
			}
			if got.Contains(ede.CodeNoReachableAuthority) {
				t.Errorf("garble %s/Cloudflare: corruption misclassified as silence (EDE 22)", c)
			}
		}
	})
}

// TestChaosReplayByteIdentical runs a schedule whose outcome genuinely
// depends on RNG draws (50% loss, too few retries to guarantee recovery)
// twice with the same seed: the rendered reports must be byte-identical.
func TestChaosReplayByteIdentical(t *testing.T) {
	harsh := Schedule{
		Name:      "harsh-loss",
		Faults:    "loss=0.5",
		Transport: &resolver.TransportConfig{Retries: 2, Sleep: noSleep},
	}
	a, err := Run(context.Background(), chaosSeed, harsh)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), chaosSeed, harsh)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.Report(), b.Report()
	if ra != rb {
		t.Fatal("two runs with the same seed produced different reports")
	}
	c, err := Run(context.Background(), chaosSeed+1, harsh)
	if err != nil {
		t.Fatal(err)
	}
	if c.Report() == ra {
		t.Fatal("a different seed replayed the identical fault history")
	}
}

// TestChaosRetryPolicyRescues demonstrates the tentpole claim directly:
// under 20% loss the legacy single-shot transport loses cells to timeout
// collapse, while the retry policy holds all 441.
func TestChaosRetryPolicyRescues(t *testing.T) {
	base, err := Run(context.Background(), chaosSeed, scheduleByName(t, "fault-free"))
	if err != nil {
		t.Fatal(err)
	}
	singleShot := Schedule{Name: "lossy-single-shot", Faults: "loss=0.2", Transport: nil}
	naive, err := Run(context.Background(), chaosSeed, singleShot)
	if err != nil {
		t.Fatal(err)
	}
	withPolicy, err := Run(context.Background(), chaosSeed, scheduleByName(t, "lossy"))
	if err != nil {
		t.Fatal(err)
	}
	naiveDiffs := len(Diff(base, naive))
	policyDiffs := len(Diff(base, withPolicy))
	t.Logf("cells changed under 20%% loss: single-shot=%d, retry-policy=%d", naiveDiffs, policyDiffs)
	if naiveDiffs == 0 {
		t.Error("single-shot transport unexpectedly survived 20% loss — the demonstration is vacuous")
	}
	if policyDiffs != 0 {
		t.Errorf("retry policy lost %d cells under 20%% loss", policyDiffs)
	}
}

// TestChaosSchedulesWellFormed keeps the schedule matrix parseable and at
// the documented minimum size.
func TestChaosSchedulesWellFormed(t *testing.T) {
	schs := Schedules()
	if len(schs) < 6 {
		t.Fatalf("only %d schedules; the chaos matrix needs the baseline plus >= 5 fault schedules", len(schs))
	}
	recoverable := 0
	for _, s := range schs {
		if _, err := ParseScheduleFaults(s); err != nil {
			t.Errorf("schedule %s: %v", s.Name, err)
		}
		if s.Recoverable {
			recoverable++
		}
	}
	if recoverable < 5 {
		t.Errorf("%d recoverable schedules, want >= 5 (including fault-free)", recoverable)
	}
}
