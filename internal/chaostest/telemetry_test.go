package chaostest

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"github.com/extended-dns-errors/edelab/internal/telemetry"
)

// TestGoldenStableUnderTracing replays the fault-free schedule with a live
// trace in the context and requires the report to stay byte-identical to the
// committed Table 4 golden. Tracing observes the resolution; it must never
// perturb it — no extra queries, no reordered retries, no changed verdicts.
func TestGoldenStableUnderTracing(t *testing.T) {
	ctx, tr := telemetry.StartTrace(context.Background(), "chaos fault-free replay")
	res, err := Run(ctx, chaosSeed, scheduleByName(t, "fault-free"))
	if err != nil {
		t.Fatal(err)
	}
	tr.Root().End()

	want, err := os.ReadFile(filepath.Join("testdata", "table4.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Report(); got != string(want) {
		t.Error("traced fault-free report differs from testdata/table4.golden — tracing perturbed the resolution")
	}

	// The trace itself must have recorded the replay's resolutions.
	snap := tr.Snapshot()
	if len(snap.Root.Children) == 0 {
		t.Fatal("trace recorded no spans — the chaos runner did not thread its context through")
	}
}
