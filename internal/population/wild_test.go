package population

import (
	"context"
	"testing"
	"time"

	"github.com/extended-dns-errors/edelab/internal/dnswire"
)

func smallWild(t *testing.T) *Wild {
	t.Helper()
	pop := Generate(Config{TotalDomains: 1515, Seed: 77})
	w, err := Materialize(pop)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestMaterializeRegistersInfrastructure(t *testing.T) {
	w := smallWild(t)
	if len(w.Roots) != 1 || len(w.Anchor) != 1 {
		t.Fatalf("roots=%d anchor=%d", len(w.Roots), len(w.Anchor))
	}
	// Every domain must be indexed.
	for _, d := range w.Pop.Domains[:50] {
		if got, ok := w.Lookup(d.Name); !ok || got != d {
			t.Fatalf("index missing %s", d.Name)
		}
	}
	if _, ok := w.Lookup(dnswire.MustName("absent.zzz")); ok {
		t.Error("index returned a nonexistent domain")
	}
}

func TestWildClock(t *testing.T) {
	w := smallWild(t)
	t0 := w.Now()
	w.AdvanceClock(2 * time.Hour)
	if got := w.Now().Sub(t0); got != 2*time.Hour {
		t.Errorf("clock advanced %v", got)
	}
}

func TestWarmupDomainsAreStaleClass(t *testing.T) {
	w := smallWild(t)
	warm := w.WarmupDomains()
	if len(warm) == 0 {
		t.Fatal("no warmup domains")
	}
	for _, name := range warm {
		d, ok := w.Lookup(name)
		if !ok || d.Class != ClassStale {
			t.Errorf("%s: class %v", name, d.Class)
		}
	}
}

func TestTLDServerReferral(t *testing.T) {
	w := smallWild(t)
	var healthy *Domain
	for _, d := range w.Pop.Domains {
		if d.Class == ClassHealthy && !d.TLD.special() {
			healthy = d
			break
		}
	}
	if healthy == nil {
		t.Fatal("no healthy domain")
	}
	q := dnswire.NewQuery(1, healthy.Name, dnswire.TypeA)
	resp, err := w.Net.Query(context.Background(), healthy.TLD.Addr, q)
	if err != nil {
		t.Fatal(err)
	}
	var ns, proof int
	for _, rr := range resp.Authority {
		switch rr.Type() {
		case dnswire.TypeNS:
			ns++
		case dnswire.TypeNSEC3, dnswire.TypeNSEC:
			proof++
		}
	}
	if ns == 0 || len(resp.Additional) == 0 {
		t.Errorf("referral: ns=%d glue=%d", ns, len(resp.Additional))
	}
	if proof == 0 {
		t.Error("unsigned delegation referral lacks the insecure proof")
	}
}

func TestTLDServerDNSKEY(t *testing.T) {
	w := smallWild(t)
	tld := w.Pop.TLDs[0]
	q := dnswire.NewQuery(2, tld.Name, dnswire.TypeDNSKEY)
	resp, err := w.Net.Query(context.Background(), tld.Addr, q)
	if err != nil {
		t.Fatal(err)
	}
	var keys, sigs int
	for _, rr := range resp.Answer {
		switch rr.Type() {
		case dnswire.TypeDNSKEY:
			keys++
		case dnswire.TypeRRSIG:
			sigs++
		}
	}
	if keys < 2 || sigs < 2 {
		t.Errorf("DNSKEY answer: keys=%d sigs=%d", keys, sigs)
	}
	// The response must be cached: a second query returns the same set.
	resp2, err := w.Net.Query(context.Background(), tld.Addr, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp2.Answer) != len(resp.Answer) {
		t.Error("DNSKEY answer not stable across queries")
	}
}

func TestTLDServerStandbyPublishesExtraKSK(t *testing.T) {
	w := smallWild(t)
	var standby *TLD
	for _, tld := range w.Pop.TLDs {
		if tld.Standby {
			standby = tld
			break
		}
	}
	if standby == nil {
		t.Fatal("no standby TLD")
	}
	q := dnswire.NewQuery(3, standby.Name, dnswire.TypeDNSKEY)
	resp, err := w.Net.Query(context.Background(), standby.Addr, q)
	if err != nil {
		t.Fatal(err)
	}
	sep := 0
	signedBy := map[uint16]bool{}
	var seps []dnswire.DNSKEY
	for _, rr := range resp.Answer {
		switch d := rr.Data.(type) {
		case dnswire.DNSKEY:
			if d.IsSEP() {
				sep++
				seps = append(seps, d)
			}
		case dnswire.RRSIG:
			signedBy[d.KeyTag] = true
		}
	}
	if sep != 2 {
		t.Fatalf("SEP keys = %d, want active + standby", sep)
	}
	unsigned := 0
	for _, k := range seps {
		if !signedBy[k.KeyTag()] {
			unsigned++
		}
	}
	if unsigned != 1 {
		t.Errorf("stand-by keys without covering RRSIG = %d, want 1", unsigned)
	}
}

func TestTLDServerRefusesForeign(t *testing.T) {
	w := smallWild(t)
	tld := w.Pop.TLDs[0]
	q := dnswire.NewQuery(4, dnswire.MustName("elsewhere.invalid"), dnswire.TypeA)
	resp, err := w.Net.Query(context.Background(), tld.Addr, q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeRefused {
		t.Errorf("rcode = %s", resp.RCode)
	}
}

func TestTLDServerUnknownChildReferral(t *testing.T) {
	w := smallWild(t)
	tld := w.Pop.TLDs[0]
	q := dnswire.NewQuery(5, tld.Name.Child("never-registered"), dnswire.TypeA)
	resp, err := w.Net.Query(context.Background(), tld.Addr, q)
	if err != nil {
		t.Fatal(err)
	}
	// Unknown children still get a (provider-backed) referral; the
	// provider answers NXDOMAIN.
	hasNS := false
	for _, rr := range resp.Authority {
		if rr.Type() == dnswire.TypeNS {
			hasNS = true
		}
	}
	if !hasNS {
		t.Error("no referral for unknown child")
	}
}

func TestProviderServesSignedDomain(t *testing.T) {
	w := smallWild(t)
	var signed *Domain
	for _, d := range w.Pop.Domains {
		if d.Class == ClassHealthySigned {
			signed = d
			break
		}
	}
	if signed == nil {
		t.Skip("no healthy-signed domain at this seed")
	}
	addr := w.providerFor(signed)

	q := dnswire.NewQuery(6, signed.Name, dnswire.TypeA)
	resp, err := w.Net.Query(context.Background(), addr, q)
	if err != nil {
		t.Fatal(err)
	}
	var a, sig bool
	for _, rr := range resp.Answer {
		switch rr.Type() {
		case dnswire.TypeA:
			a = true
		case dnswire.TypeRRSIG:
			sig = true
		}
	}
	if !a || !sig {
		t.Errorf("signed answer: a=%t sig=%t", a, sig)
	}

	q = dnswire.NewQuery(7, signed.Name, dnswire.TypeDNSKEY)
	resp, err = w.Net.Query(context.Background(), addr, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answer) < 3 {
		t.Errorf("DNSKEY answer records = %d", len(resp.Answer))
	}
}

func TestChildOf(t *testing.T) {
	tld := dnswire.MustName("com")
	cases := []struct{ in, want string }{
		{"d1.com", "d1.com."},
		{"ns1.d1.com", "d1.com."},
		{"deep.ns1.d1.com", "d1.com."},
	}
	for _, c := range cases {
		if got := childOf(dnswire.MustName(c.in), tld); string(got) != c.want {
			t.Errorf("childOf(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestWindowFor(t *testing.T) {
	for _, c := range []struct {
		w    SigWindow
		past bool
	}{{WindowValid, false}, {WindowExpired, true}, {WindowFuture, false}} {
		inc, exp := windowFor(c.w)
		if inc >= exp {
			t.Errorf("window %v: inception %d >= expiration %d", c.w, inc, exp)
		}
		if c.past && exp >= ScanTime {
			t.Errorf("expired window ends at %d, after scan time", exp)
		}
	}
}

// TestNSECDenialTLDsServeNSECProofs pins the denial-flavour split.
func TestNSECDenialTLDsServeNSECProofs(t *testing.T) {
	w := smallWild(t)
	var checked int
	for _, d := range w.Pop.Domains {
		if checked >= 2 || d.Class != ClassHealthy || !d.TLD.NSECDenial || d.TLD.special() {
			continue
		}
		checked++
		q := dnswire.NewQuery(9, d.Name, dnswire.TypeA)
		resp, err := w.Net.Query(context.Background(), d.TLD.Addr, q)
		if err != nil {
			t.Fatal(err)
		}
		var nsec, nsec3 int
		for _, rr := range resp.Authority {
			switch rr.Type() {
			case dnswire.TypeNSEC:
				nsec++
			case dnswire.TypeNSEC3:
				nsec3++
			}
		}
		if nsec == 0 || nsec3 != 0 {
			t.Errorf("%s: nsec=%d nsec3=%d, want plain NSEC proof", d.Name, nsec, nsec3)
		}
	}
	if checked == 0 {
		t.Skip("no healthy domain under an NSEC TLD at this seed")
	}
}

func TestClassStrings(t *testing.T) {
	for c := ClassHealthy; c < numClasses; c++ {
		if s := c.String(); s == "" || s[0] == 'C' {
			t.Errorf("class %d unnamed: %q", int(c), s)
		}
	}
}
