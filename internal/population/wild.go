package population

import (
	"context"
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/extended-dns-errors/edelab/internal/authserver"
	"github.com/extended-dns-errors/edelab/internal/dnssec"
	"github.com/extended-dns-errors/edelab/internal/dnswire"
	"github.com/extended-dns-errors/edelab/internal/netsim"
	"github.com/extended-dns-errors/edelab/internal/zone"
)

// Timing constants shared by the wild infrastructure (same epoch as the
// testbed: valid signatures straddle ScanTime).
const (
	ScanTime       uint32 = 1750000000
	wildInception  uint32 = 1700000000
	wildExpiration uint32 = 1800000000
	pastInception  uint32 = 1600000000
	pastExpiration uint32 = 1650000000
	futInception   uint32 = 1900000000
	futExpiration  uint32 = 1950000000
)

// Wild is the materialized synthetic Internet: a signed root, one server
// per TLD, provider endpoints for healthy domains, and the §4.2 menagerie
// of broken nameservers.
type Wild struct {
	Net    *netsim.Network
	Roots  []netip.Addr
	Anchor []dnswire.DS
	Pop    *Population

	// offset shifts the scan instant; the scan harness advances it between
	// the cache-warmup pass and the measurement pass. It is an atomic
	// nanosecond count because every resolution reads the clock — a mutex
	// here was a global serialization point for the whole worker pool.
	offset atomic.Int64

	providers []netip.Addr
	index     map[dnswire.Name]*Domain
}

// Now is the wild clock (ScanTime plus any offset set by AdvanceClock).
func (w *Wild) Now() time.Time {
	return time.Unix(int64(ScanTime), 0).Add(time.Duration(w.offset.Load()))
}

// AdvanceClock moves the wild clock forward (used between the warmup and
// measurement passes so warmed cache entries expire into stale range).
func (w *Wild) AdvanceClock(d time.Duration) {
	w.offset.Add(int64(d))
}

// WarmupDomains lists the domains whose resolutions must be primed before
// the scan — the stale-answer class, standing in for the background client
// traffic that populated Cloudflare's shared cache in the real measurement.
func (w *Wild) WarmupDomains() []dnswire.Name {
	var out []dnswire.Name
	for _, d := range w.Pop.Domains {
		if d.Class == ClassStale {
			out = append(out, d.Name)
		}
	}
	return out
}

// Lookup returns the domain spec for a name.
func (w *Wild) Lookup(name dnswire.Name) (*Domain, bool) {
	d, ok := w.index[name]
	return d, ok
}

// Materialize wires the population onto a fresh simulated network.
func Materialize(pop *Population) (*Wild, error) {
	w := &Wild{
		Net:   netsim.New(pop.Config.Seed ^ 0x57494C44), // "WILD"
		Pop:   pop,
		index: make(map[dnswire.Name]*Domain, len(pop.Domains)),
	}
	for _, d := range pop.Domains {
		w.index[d.Name] = d
	}

	// Provider pool for healthy domains.
	for i := 0; i < 16; i++ {
		w.providers = append(w.providers, netip.AddrFrom4([4]byte{198, 21, 0, byte(i + 1)}))
	}

	// Signing material for signed wild classes.
	if err := buildChildKeys(pop); err != nil {
		return nil, err
	}

	// Root zone with one delegation per TLD.
	rootAddr := netip.AddrFrom4([4]byte{198, 18, 0, 1})
	root := zone.New(dnswire.Root, 86400)
	root.AddNS(dnswire.MustName("a.root-servers.net"), rootAddr)

	tldServers := make([]*tldServer, 0, len(pop.TLDs))
	for _, t := range pop.TLDs {
		srv, err := newTLDServer(w, t)
		if err != nil {
			return nil, err
		}
		tldServers = append(tldServers, srv)
		nsHost := t.Name.Child("ns")
		root.AddDelegation(t.Name, map[dnswire.Name][]netip.Addr{nsHost: {t.Addr}})
		root.AddDS(t.Name, srv.ds)
	}
	if err := root.Sign(zone.SignOptions{
		Algorithm: dnssec.AlgED25519,
		Inception: wildInception, Expiration: wildExpiration,
	}); err != nil {
		return nil, err
	}
	anchor, err := root.DS(dnssec.DigestSHA256)
	if err != nil {
		return nil, err
	}
	w.Roots = []netip.Addr{rootAddr}
	w.Anchor = anchor
	w.Net.Register(rootAddr, authserver.New(root))
	for _, srv := range tldServers {
		w.Net.Register(srv.tld.Addr, srv)
	}

	// Provider endpoints.
	provider := &providerServer{wild: w}
	for _, addr := range w.providers {
		w.Net.Register(addr, provider)
	}
	// Shared special endpoints.
	w.Net.Register(invalidDataAddr, netsim.MismatchedQuestion(provider))
	w.Net.Register(notAuthAddr, netsim.StaticRCode(dnswire.RCodeNotAuth))

	// Broken nameservers.
	for _, ns := range pop.BrokenNS {
		switch ns.Behavior {
		case "refused":
			w.Net.Register(ns.Addr, netsim.StaticRCode(dnswire.RCodeRefused))
		case "servfail":
			w.Net.Register(ns.Addr, netsim.StaticRCode(dnswire.RCodeServFail))
		default:
			// timeout: leave unregistered — silence.
		}
	}

	// Dying endpoints for the stale class: answer once (the warmup), then
	// go dark.
	staleIdx := 0
	for _, d := range pop.Domains {
		if d.Class != ClassStale {
			continue
		}
		addr := netip.AddrFrom4([4]byte{198, 21, 1, byte(staleIdx%250 + 1)})
		staleIdx++
		var broken netsim.Handler
		if staleIdx%3 == 0 {
			broken = netsim.StaticRCode(dnswire.RCodeRefused) // → EDE 3,22,23
		} else {
			broken = netsim.Unresponsive() // → EDE 3,22
		}
		w.Net.Register(addr, netsim.DieAfter(1, provider, broken))
		d.staleAddr = addr
	}
	return w, nil
}

var invalidDataAddr = netip.AddrFrom4([4]byte{198, 21, 2, 1})
var notAuthAddr = netip.AddrFrom4([4]byte{198, 21, 2, 2})

// nsAddrsFor returns the nameserver addresses the TLD publishes as glue for
// a domain, ordered deterministically.
func (w *Wild) nsAddrsFor(d *Domain) []netip.Addr {
	switch d.Class {
	case ClassLameTimeout, ClassLameRefused, ClassLameServfail:
		return []netip.Addr{w.Pop.BrokenNS[d.BrokenNS].Addr}
	case ClassPartialUpstream:
		// Broken server listed first: the resolver hits it, records the
		// Network Error advisory, then succeeds on the provider.
		return []netip.Addr{w.Pop.BrokenNS[d.BrokenNS].Addr, w.providerFor(d)}
	case ClassInvalidData:
		return []netip.Addr{invalidDataAddr}
	case ClassCachedError:
		return []netip.Addr{notAuthAddr}
	case ClassStale:
		return []netip.Addr{d.staleAddr}
	default:
		return []netip.Addr{w.providerFor(d)}
	}
}

func (w *Wild) providerFor(d *Domain) netip.Addr {
	h := 0
	for _, c := range string(d.Name) {
		h = h*31 + int(c)
	}
	if h < 0 {
		h = -h
	}
	return w.providers[h%len(w.providers)]
}

// buildChildKeys creates DNSSEC material for every signed wild domain.
func buildChildKeys(pop *Population) error {
	unsupportedRotation := 0
	for _, d := range pop.Domains {
		var alg dnssec.Algorithm
		var bits int
		digest := dnssec.DigestSHA256
		window := WindowValid
		mismatch := false

		switch d.Class {
		case ClassHealthySigned:
			alg = dnssec.AlgED25519
		case ClassSigExpired:
			alg, window = dnssec.AlgED25519, WindowExpired
		case ClassSigNotYet:
			alg, window = dnssec.AlgED25519, WindowFuture
		case ClassDNSKEYMismatch:
			alg, mismatch = dnssec.AlgED25519, true
		case ClassUnsupportedDigest:
			alg, digest = dnssec.AlgED25519, dnssec.DigestGOST
		case ClassUnsupportedAlg:
			// Rotate through the §4.2 item 7 causes: GOST, Ed448, weak RSA.
			switch unsupportedRotation % 3 {
			case 0:
				alg = dnssec.AlgECCGOST
			case 1:
				alg = dnssec.AlgED448
			default:
				alg, bits = dnssec.AlgRSASHA256, 512
			}
			unsupportedRotation++
		default:
			continue
		}

		ksk, err := dnssec.GenerateKey(alg, dnswire.DNSKEYFlagZone|dnswire.DNSKEYFlagSEP, bits)
		if err != nil {
			return err
		}
		zsk, err := dnssec.GenerateKey(alg, dnswire.DNSKEYFlagZone, bits)
		if err != nil {
			return err
		}
		dsKey := ksk
		if mismatch {
			// The DS points at a retired key that is no longer published.
			if dsKey, err = dnssec.GenerateKey(alg, dnswire.DNSKEYFlagZone|dnswire.DNSKEYFlagSEP, bits); err != nil {
				return err
			}
		}
		ds, err := dnssec.CreateDS(d.Name, dsKey.DNSKEY(), digest)
		if err != nil {
			return err
		}
		d.Keys = &ChildKeys{KSK: ksk, ZSK: zsk, DS: ds, DigestType: digest, Window: window}
	}
	return nil
}

// --- TLD server: synthesizes referrals, DS records, and insecure proofs ---

type tldServer struct {
	wild *Wild
	tld  *TLD
	ksk  *dnssec.KeyPair
	zsk  *dnssec.KeyPair
	ds   dnswire.DS

	mu         sync.Mutex
	dnskeyResp *dnswire.Message
}

func newTLDServer(w *Wild, t *TLD) (*tldServer, error) {
	ksk, err := dnssec.GenerateKey(dnssec.AlgED25519, dnswire.DNSKEYFlagZone|dnswire.DNSKEYFlagSEP, 0)
	if err != nil {
		return nil, err
	}
	zsk, err := dnssec.GenerateKey(dnssec.AlgED25519, dnswire.DNSKEYFlagZone, 0)
	if err != nil {
		return nil, err
	}
	ds, err := dnssec.CreateDS(t.Name, ksk.DNSKEY(), dnssec.DigestSHA256)
	if err != nil {
		return nil, err
	}
	return &tldServer{wild: w, tld: t, ksk: ksk, zsk: zsk, ds: ds}, nil
}

// HandleDNS implements netsim.Handler.
func (s *tldServer) HandleDNS(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	resp := q.Reply()
	if len(q.Question) != 1 {
		resp.RCode = dnswire.RCodeFormErr
		return resp, nil
	}
	question := q.Question[0]
	if !question.Name.IsSubdomainOf(s.tld.Name) {
		resp.RCode = dnswire.RCodeRefused
		return resp, nil
	}
	if question.Name == s.tld.Name {
		if question.Type == dnswire.TypeDNSKEY {
			return s.dnskeyAnswer(q), nil
		}
		// Anything else at the apex: NODATA without proof; the scan never
		// asks.
		return resp, nil
	}

	// Child query → referral.
	child := childOf(question.Name, s.tld.Name)
	domain, known := s.wild.index[child]
	resp.Authority = append(resp.Authority, dnswire.RR{
		Name: child, Class: dnswire.ClassIN, TTL: 3600,
		Data: dnswire.NS{Host: child.Child("ns1")},
	})
	var glue []netip.Addr
	if known {
		glue = s.wild.nsAddrsFor(domain)
	} else {
		glue = []netip.Addr{s.wild.providers[0]}
	}
	for i, addr := range glue {
		host := child.Child("ns1")
		if i > 0 {
			host = child.Child(fmt.Sprintf("ns%d", i+1))
			resp.Authority = append(resp.Authority, dnswire.RR{
				Name: child, Class: dnswire.ClassIN, TTL: 3600,
				Data: dnswire.NS{Host: host},
			})
		}
		resp.Additional = append(resp.Additional, dnswire.RR{
			Name: host, Class: dnswire.ClassIN, TTL: 3600,
			Data: dnswire.A{Addr: addr},
		})
	}

	if q.DO() {
		if known && domain.Keys != nil {
			s.attachDS(resp, child, domain.Keys.DS)
		} else {
			s.attachInsecureProof(resp, child)
		}
	}
	return resp, nil
}

func (s *tldServer) dnskeyAnswer(q *dnswire.Message) *dnswire.Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dnskeyResp == nil {
		keys := []dnswire.RR{
			{Name: s.tld.Name, Class: dnswire.ClassIN, TTL: 3600, Data: s.ksk.DNSKEY()},
			{Name: s.tld.Name, Class: dnswire.ClassIN, TTL: 3600, Data: s.zsk.DNSKEY()},
		}
		signers := []*dnssec.KeyPair{s.ksk, s.zsk}
		if s.tld.Standby {
			// Publish a stand-by KSK with no covering signature (§4.2
			// item 3): validators chain through the active key, Cloudflare
			// additionally reports RRSIGs Missing as an advisory.
			standby, err := dnssec.GenerateKey(dnssec.AlgED25519, dnswire.DNSKEYFlagZone|dnswire.DNSKEYFlagSEP, 0)
			if err == nil {
				keys = append(keys, dnswire.RR{Name: s.tld.Name, Class: dnswire.ClassIN, TTL: 3600, Data: standby.DNSKEY()})
			}
		}
		msg := &dnswire.Message{Response: true, Authoritative: true,
			Question: []dnswire.Question{{Name: s.tld.Name, Type: dnswire.TypeDNSKEY, Class: dnswire.ClassIN}},
			OPT:      &dnswire.OPT{UDPSize: 1232, DO: true},
		}
		msg.Answer = append(msg.Answer, keys...)
		for _, key := range signers {
			sig, err := dnssec.SignRRset(keys, key, s.tld.Name, wildInception, wildExpiration)
			if err == nil {
				msg.Answer = append(msg.Answer, sig)
			}
		}
		s.dnskeyResp = msg
	}
	out := *s.dnskeyResp
	out.ID = q.ID
	return &out
}

func (s *tldServer) attachDS(resp *dnswire.Message, child dnswire.Name, ds dnswire.DS) {
	rr := dnswire.RR{Name: child, Class: dnswire.ClassIN, TTL: 3600, Data: ds}
	set := []dnswire.RR{rr}
	resp.Authority = append(resp.Authority, rr)
	if sig, err := dnssec.SignRRset(set, s.zsk, s.tld.Name, wildInception, wildExpiration); err == nil {
		resp.Authority = append(resp.Authority, sig)
	}
}

// attachInsecureProof adds the NSEC3 (or plain NSEC, for NSECDenial TLDs)
// record proving the delegation has no DS. NoProof TLDs omit it;
// BogusDenial TLDs corrupt its signature.
func (s *tldServer) attachInsecureProof(resp *dnswire.Message, child dnswire.Name) {
	if s.tld.NoProof {
		return
	}
	if s.tld.NSECDenial {
		s.attachInsecureProofNSEC(resp, child)
		return
	}
	hash := dnssec.NSEC3Hash(child, 0, nil)
	next := append([]byte(nil), hash...)
	next[len(next)-1]++
	owner := s.tld.Name.Child(dnswire.Base32HexNoPad(hash))
	rec := dnswire.RR{
		Name: owner, Class: dnswire.ClassIN, TTL: 3600,
		Data: dnswire.NSEC3{
			HashAlg: dnssec.NSEC3HashSHA1, NextHashed: next,
			Types: []dnswire.Type{dnswire.TypeNS},
		},
	}
	set := []dnswire.RR{rec}
	resp.Authority = append(resp.Authority, rec)
	sig, err := dnssec.SignRRset(set, s.zsk, s.tld.Name, wildInception, wildExpiration)
	if err != nil {
		return
	}
	if s.tld.BogusDenial {
		data := sig.Data.(dnswire.RRSIG)
		data.Signature = append([]byte(nil), data.Signature...)
		data.Signature[0] ^= 0xFF
		sig.Data = data
	}
	resp.Authority = append(resp.Authority, sig)
}

// attachInsecureProofNSEC is the plain-NSEC flavour of the no-DS proof: an
// NSEC record at the cut whose bitmap lacks DS.
func (s *tldServer) attachInsecureProofNSEC(resp *dnswire.Message, child dnswire.Name) {
	rec := dnswire.RR{
		Name: child, Class: dnswire.ClassIN, TTL: 3600,
		Data: dnswire.NSEC{
			NextName: child.Child("\000"),
			Types:    []dnswire.Type{dnswire.TypeNS, dnswire.TypeRRSIG, dnswire.TypeNSEC},
		},
	}
	set := []dnswire.RR{rec}
	resp.Authority = append(resp.Authority, rec)
	sig, err := dnssec.SignRRset(set, s.zsk, s.tld.Name, wildInception, wildExpiration)
	if err != nil {
		return
	}
	if s.tld.BogusDenial {
		data := sig.Data.(dnswire.RRSIG)
		data.Signature = append([]byte(nil), data.Signature...)
		data.Signature[0] ^= 0xFF
		sig.Data = data
	}
	resp.Authority = append(resp.Authority, sig)
}

// childOf returns the direct child of tld on the path to name.
func childOf(name, tld dnswire.Name) dnswire.Name {
	labels := name.Labels()
	tldLabels := tld.LabelCount()
	childLabel := labels[len(labels)-tldLabels-1]
	return tld.Child(childLabel)
}

// --- provider server: answers for healthy and signed wild domains ---

type providerServer struct {
	wild *Wild
}

// HandleDNS implements netsim.Handler.
func (s *providerServer) HandleDNS(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	resp := q.Reply()
	if len(q.Question) != 1 {
		resp.RCode = dnswire.RCodeFormErr
		return resp, nil
	}
	question := q.Question[0]

	// Find the owning domain: the question is either the domain apex or a
	// host under it.
	domain, ok := s.wild.index[question.Name]
	if !ok {
		domain, ok = s.wild.index[question.Name.Parent()]
	}
	if !ok {
		resp.RCode = dnswire.RCodeNXDomain
		resp.Authoritative = true
		return resp, nil
	}
	resp.Authoritative = true
	apex := domain.Name

	switch {
	case question.Name == apex && question.Type == dnswire.TypeA:
		if domain.Class == ClassIterLoop {
			resp.Answer = append(resp.Answer, dnswire.RR{
				Name: apex, Class: dnswire.ClassIN, TTL: 300,
				Data: dnswire.CNAME{Target: apex.Child("loop")},
			})
			// The loop target aliases back to the apex.
			return resp, nil
		}
		a := dnswire.RR{Name: apex, Class: dnswire.ClassIN, TTL: 300,
			Data: dnswire.A{Addr: addrForDomain(apex)}}
		resp.Answer = append(resp.Answer, a)
		if domain.Keys != nil && q.DO() {
			inc, exp := windowFor(domain.Keys.Window)
			if sig, err := dnssec.SignRRset([]dnswire.RR{a}, domain.Keys.ZSK, apex, inc, exp); err == nil {
				resp.Answer = append(resp.Answer, sig)
			}
		}
	case question.Type == dnswire.TypeA && question.Name == apex.Child("loop"):
		resp.Answer = append(resp.Answer, dnswire.RR{
			Name: question.Name, Class: dnswire.ClassIN, TTL: 300,
			Data: dnswire.CNAME{Target: apex},
		})
	case question.Name == apex && question.Type == dnswire.TypeDNSKEY && domain.Keys != nil:
		keys := []dnswire.RR{
			{Name: apex, Class: dnswire.ClassIN, TTL: 300, Data: domain.Keys.KSK.DNSKEY()},
			{Name: apex, Class: dnswire.ClassIN, TTL: 300, Data: domain.Keys.ZSK.DNSKEY()},
		}
		resp.Answer = append(resp.Answer, keys...)
		if q.DO() {
			for _, key := range []*dnssec.KeyPair{domain.Keys.KSK, domain.Keys.ZSK} {
				if sig, err := dnssec.SignRRset(keys, key, apex, wildInception, wildExpiration); err == nil {
					resp.Answer = append(resp.Answer, sig)
				}
			}
		}
	case question.Type == dnswire.TypeA && question.Name.IsSubdomainOf(apex):
		// Nameserver host addresses.
		resp.Answer = append(resp.Answer, dnswire.RR{
			Name: question.Name, Class: dnswire.ClassIN, TTL: 300,
			Data: dnswire.A{Addr: s.wild.providerFor(domain)},
		})
	default:
		// NODATA.
	}
	return resp, nil
}

func windowFor(w SigWindow) (uint32, uint32) {
	switch w {
	case WindowExpired:
		return pastInception, pastExpiration
	case WindowFuture:
		return futInception, futExpiration
	default:
		return wildInception, wildExpiration
	}
}

// addrForDomain derives a stable answer address.
func addrForDomain(n dnswire.Name) netip.Addr {
	h := uint32(2166136261)
	for i := 0; i < len(n); i++ {
		h = (h ^ uint32(n[i])) * 16777619
	}
	return netip.AddrFrom4([4]byte{203, 0, 113, byte(h%250 + 1)})
}

// RepairTopNameservers implements the paper's §4.2 item 2 counterfactual:
// "fixing 20k nameservers would render reachable more than 81% of domain
// names". The k busiest broken nameservers are re-registered as healthy
// providers answering for their stranded domains; a re-scan then measures
// the recovery directly instead of inferring it from the assignment table.
// It returns how many nameservers were repaired.
func (w *Wild) RepairTopNameservers(k int) int {
	// Order broken nameservers by stranded-domain count, descending.
	idx := make([]int, len(w.Pop.BrokenNS))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return w.Pop.BrokenNS[idx[a]].Domains > w.Pop.BrokenNS[idx[b]].Domains
	})
	provider := &providerServer{wild: w}
	repaired := 0
	for _, i := range idx {
		if repaired >= k || w.Pop.BrokenNS[i].Domains == 0 {
			break
		}
		w.Net.Register(w.Pop.BrokenNS[i].Addr, provider)
		repaired++
	}
	return repaired
}
