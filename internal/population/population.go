// Package population synthesizes the registered-domain population behind the
// paper's Internet-wide scan (Section 4): 1,475 TLDs with a heavy-tailed
// size distribution, misconfiguration classes injected at the paper's
// measured rates, broken-nameserver concentration matching §4.2 item 2, and
// a Tranco-like popularity ranking (§4.3).
//
// Substitution note (DESIGN.md §2): the paper's per-class counts are
// properties of the May 2023 Internet and are *inputs* here, taken from
// §4.2; what the reproduction demonstrates is the pipeline (scan → EDE
// extraction → aggregation) and the resulting distributions' shapes. The
// default scale is 1:1,000 (303,000 domains). Classes whose paper count is
// below the scale resolution are floored at one domain so every §4.2 code
// path is exercised; EXPERIMENTS.md records the resulting inflation.
package population

import (
	"fmt"
	"math"
	"math/rand/v2"
	"net/netip"
	"sort"

	"github.com/extended-dns-errors/edelab/internal/dnssec"
	"github.com/extended-dns-errors/edelab/internal/dnswire"
)

// Class is a wild-domain misconfiguration class, one per §4.2 item (plus
// splits where one item covers several network behaviours).
type Class int

// Classes and the EDE codes they lead to under the Cloudflare profile.
const (
	// ClassHealthy resolves cleanly (unsigned).
	ClassHealthy Class = iota
	// ClassHealthySigned resolves cleanly with a validated chain.
	ClassHealthySigned
	// ClassLameTimeout: all nameservers silent → EDE 22.
	ClassLameTimeout
	// ClassLameRefused: all nameservers REFUSED → EDE 22,23.
	ClassLameRefused
	// ClassLameServfail: all nameservers SERVFAIL → EDE 22,23.
	ClassLameServfail
	// ClassPartialUpstream: one nameserver REFUSED, another answers →
	// NOERROR with EDE 23.
	ClassPartialUpstream
	// ClassStandby: healthy domain under a TLD publishing a stand-by KSK →
	// NOERROR with EDE 10.
	ClassStandby
	// ClassDNSKEYMismatch: parent DS matches no child DNSKEY → EDE 9.
	ClassDNSKEYMismatch
	// ClassBogusTLD: the TLD serves invalid referral proofs → EDE 6.
	ClassBogusTLD
	// ClassInvalidData: nameserver returns mismatched questions → EDE 24.
	ClassInvalidData
	// ClassUnsupportedAlg: GOST/Ed448/512-bit keys → EDE 1 (NOERROR).
	ClassUnsupportedAlg
	// ClassSigExpired: answer signatures expired → EDE 7.
	ClassSigExpired
	// ClassNSECMissingTLD: TLD referral lacks the insecure proof → EDE 12.
	ClassNSECMissingTLD
	// ClassUnsupportedDigest: GOST DS digest → EDE 2 (NOERROR).
	ClassUnsupportedDigest
	// ClassStale: nameservers died after caches were warmed → EDE 3 (+22).
	ClassStale
	// ClassSigNotYet: answer signatures from the future → EDE 8.
	ClassSigNotYet
	// ClassCachedError: nameservers answer NOTAUTH → EDE 13.
	ClassCachedError
	// ClassIterLoop: CNAME loops exhaust the work budget → EDE 0.
	ClassIterLoop

	numClasses
)

var classNames = map[Class]string{
	ClassHealthy:           "healthy",
	ClassHealthySigned:     "healthy-signed",
	ClassLameTimeout:       "lame-timeout",
	ClassLameRefused:       "lame-refused",
	ClassLameServfail:      "lame-servfail",
	ClassPartialUpstream:   "partial-upstream",
	ClassStandby:           "standby-ksk",
	ClassDNSKEYMismatch:    "dnskey-mismatch",
	ClassBogusTLD:          "bogus-tld-denial",
	ClassInvalidData:       "invalid-data",
	ClassUnsupportedAlg:    "unsupported-algorithm",
	ClassSigExpired:        "signature-expired",
	ClassNSECMissingTLD:    "nsec-missing-referral",
	ClassUnsupportedDigest: "unsupported-ds-digest",
	ClassStale:             "stale-answer",
	ClassSigNotYet:         "signature-not-yet-valid",
	ClassCachedError:       "cached-error",
	ClassIterLoop:          "iteration-loop",
}

func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// PaperTotal is the paper's scanned population (§4.1).
const PaperTotal = 303_000_000

// paperCounts are the §4.2 class sizes at full (303M) scale. The lame split
// derives from the paper's set algebra: |EDE22| = 13,965,865,
// |EDE23| = 11,647,551, |22 ∪ 23| = 14.8M ⇒ |22 ∩ 23| = 10,813,416.
var paperCounts = map[Class]int{
	ClassLameTimeout:       3_152_449, // 22 only
	ClassLameRefused:       9_948_343, // 22+23, REFUSED (92% of the intersection)
	ClassLameServfail:      865_073,   // 22+23, SERVFAIL
	ClassPartialUpstream:   834_135,   // 23 only
	ClassStandby:           2_746_604, // item 3
	ClassDNSKEYMismatch:    296_643,   // item 4
	ClassBogusTLD:          82_465,    // item 5
	ClassInvalidData:       12_268,    // item 6
	ClassUnsupportedAlg:    8_751,     // item 7
	ClassSigExpired:        2_877,     // item 8
	ClassNSECMissingTLD:    1_980,     // item 9
	ClassUnsupportedDigest: 62,        // item 10
	ClassStale:             32,        // item 11
	ClassSigNotYet:         29,        // item 12
	ClassCachedError:       8,         // item 13
	ClassIterLoop:          7,         // item 14
}

// Config parameterizes population generation.
type Config struct {
	// TotalDomains is the population size (default 303,000 = 1:1,000).
	TotalDomains int
	// Seed drives all pseudo-random choices; same seed, same population.
	Seed uint64
	// GTLDs / CCTLDs are the TLD counts (defaults 1,160 + 315 = 1,475).
	GTLDs, CCTLDs int
	// HealthySignedFraction of healthy domains get a validated DNSSEC
	// chain (exercises validation throughout the scan).
	HealthySignedFraction float64
}

func (c *Config) setDefaults() {
	if c.TotalDomains == 0 {
		c.TotalDomains = PaperTotal / 1000
	}
	if c.GTLDs == 0 {
		c.GTLDs = 1160
	}
	if c.CCTLDs == 0 {
		c.CCTLDs = 315
	}
	if c.HealthySignedFraction == 0 {
		c.HealthySignedFraction = 0.002
	}
}

// TLD is one top-level domain in the synthetic root.
type TLD struct {
	Name  dnswire.Name
	Label string
	CC    bool
	// Standby marks TLDs publishing a stand-by KSK (EDE 10 for every
	// resolution through them).
	Standby bool
	// BogusDenial marks TLDs whose referral proofs are invalid (EDE 6).
	BogusDenial bool
	// NoProof marks TLDs whose referrals omit the insecure proof (EDE 12).
	NoProof bool
	// Clean marks TLDs guaranteed free of misconfigured domains.
	Clean bool
	// AllBroken marks the Figure 1 extreme: every domain misconfigured.
	AllBroken bool
	// NSECDenial marks TLDs that prove unsigned delegations with plain
	// NSEC instead of NSEC3 (as the real root and several TLDs do).
	NSECDenial bool

	Domains int // number of registered domains
	Addr    netip.Addr
}

// Domain is one registered domain of the synthetic population.
type Domain struct {
	Name  dnswire.Name
	TLD   *TLD
	Class Class
	// Rank is the Tranco-style popularity rank (0 = unranked).
	Rank int
	// BrokenNS indexes Population.BrokenNS for lame classes, else -1.
	BrokenNS int
	// Keys holds DNSSEC material for signed classes (lazily built wild
	// servers share it with the TLD's DS synthesis).
	Keys *ChildKeys

	// staleAddr is the dedicated dying endpoint of a ClassStale domain.
	staleAddr netip.Addr
}

// ChildKeys is the signing material of a signed wild domain.
type ChildKeys struct {
	KSK, ZSK *dnssec.KeyPair
	// DS is what the TLD publishes; for ClassDNSKEYMismatch it derives
	// from a retired key.
	DS dnswire.DS
	// DigestType of the published DS.
	DigestType dnssec.DigestType
	// Window selects the RRSIG validity window for answer records.
	Window SigWindow
}

// SigWindow selects answer-signature timing.
type SigWindow int

// Signature windows.
const (
	WindowValid SigWindow = iota
	WindowExpired
	WindowFuture
)

// BrokenNS is one malfunctioning nameserver of §4.2 item 2.
type BrokenNS struct {
	Addr netip.Addr
	// Behavior: "refused", "servfail", or "timeout".
	Behavior string
	// Domains served by this nameserver (for the fix-top-k analysis).
	Domains int
}

// Population is the generated synthetic registry.
type Population struct {
	Config   Config
	TLDs     []*TLD
	Domains  []*Domain
	BrokenNS []BrokenNS
	// TrancoSize is the length of the popularity ranking (scaled 1M).
	TrancoSize int
	// Scale is TotalDomains / 303M.
	Scale float64
}

// NameIter yields the population's registered-domain names one at a time in
// generation order. It satisfies scan.NameSource, so a wild scan can stream
// the population without first materializing a []Name the size of the zone
// file (303M names at full scale). Next is not safe for concurrent use; the
// streaming scanner serializes its calls.
type NameIter struct {
	domains []*Domain
	i       int
}

// Next returns the next domain name, or ok=false when exhausted.
func (it *NameIter) Next() (dnswire.Name, bool) {
	if it.i >= len(it.domains) {
		return "", false
	}
	n := it.domains[it.i].Name
	it.i++
	return n, true
}

// Len reports how many names remain.
func (it *NameIter) Len() int { return len(it.domains) - it.i }

// Skip advances past the next n names (or to the end if fewer remain): a
// resumed campaign shard skips the prefix its checkpoint already folded.
func (it *NameIter) Skip(n int) {
	if n < 0 {
		n = 0
	}
	it.i += n
	if it.i > len(it.domains) {
		it.i = len(it.domains)
	}
}

// Names returns a fresh iterator over the population's domains.
func (p *Population) Names() *NameIter { return &NameIter{domains: p.Domains} }

// NamesRange returns a fresh iterator over domains[lo:hi) in generation
// order — one campaign shard's slice of the population. Bounds are clamped
// to the domain list.
func (p *Population) NamesRange(lo, hi int) *NameIter {
	if lo < 0 {
		lo = 0
	}
	if hi > len(p.Domains) {
		hi = len(p.Domains)
	}
	if lo > hi {
		lo = hi
	}
	return &NameIter{domains: p.Domains[lo:hi]}
}

// ClassQuota returns the scaled target count for class c: round(paper×scale)
// floored at 1 for classes the paper observed at all.
func ClassQuota(c Class, scale float64) int {
	n := paperCounts[c]
	if n == 0 {
		return 0
	}
	scaled := int(math.Round(float64(n) * scale))
	if scaled < 1 {
		scaled = 1
	}
	return scaled
}

// Generate builds the population deterministically from cfg.
func Generate(cfg Config) *Population {
	cfg.setDefaults()
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xA5A5A5A5DEADBEEF))
	scale := float64(cfg.TotalDomains) / float64(PaperTotal)

	p := &Population{Config: cfg, Scale: scale}
	p.TrancoSize = int(math.Round(1_000_000 * scale))
	if p.TrancoSize < 100 {
		p.TrancoSize = 100
	}

	p.buildTLDs(cfg, rng, scale)
	p.buildDomains(rng)
	p.assignClasses(rng, scale)
	p.assignBrokenNS(rng)
	p.assignTranco(rng)
	return p
}

// buildTLDs creates the TLD list: sizes, special sets, addresses.
func (p *Population) buildTLDs(cfg Config, rng *rand.Rand, scale float64) {
	total := cfg.GTLDs + cfg.CCTLDs
	p.TLDs = make([]*TLD, 0, total)
	addrIdx := 0
	nextAddr := func() netip.Addr {
		addrIdx++
		return netip.AddrFrom4([4]byte{198, 19, byte(addrIdx / 250), byte(addrIdx%250 + 1)})
	}
	for i := 0; i < cfg.GTLDs; i++ {
		label := gTLDLabel(i)
		p.TLDs = append(p.TLDs, &TLD{
			Name: dnswire.MustName(label), Label: label, Addr: nextAddr(),
			// Roughly a third of TLDs use plain NSEC denial, like the
			// real root zone and several large TLDs.
			NSECDenial: i%3 == 0,
		})
	}
	for i := 0; i < cfg.CCTLDs; i++ {
		label := ccTLDLabel(i)
		p.TLDs = append(p.TLDs, &TLD{
			Name: dnswire.MustName(label), Label: label, CC: true, Addr: nextAddr(),
		})
	}

	// Special TLD sets (all small-index TLDs are the big generic ones; the
	// special sets come from the tail so com/net/org stay ordinary).
	gs := p.TLDs[:cfg.GTLDs]
	ccs := p.TLDs[cfg.GTLDs:]

	// Stand-by KSK: 2 large ccTLDs plus 22 small gTLD suffixes (§4.2 item 3).
	ccs[0].Standby = true
	ccs[1].Standby = true
	for i := 0; i < 22 && i+40 < len(gs); i++ {
		gs[len(gs)-1-i].Standby = true
	}
	// Bogus-denial TLDs (§4.2 item 5: 124 TLDs, scaled).
	// Infrastructure counts shrink with the square root of the domain scale
	// so that broken TLDs still host several domains each at small scales.
	nBogus := maxInt(2, int(math.Round(124*math.Sqrt(scale))))
	for i := 0; i < nBogus && 30+i < len(gs); i++ {
		gs[len(gs)-30-i].BogusDenial = true
	}
	// No-proof TLDs (§4.2 item 9).
	nNoProof := maxInt(2, nBogus/3)
	for i := 0; i < nNoProof && 70+i < len(ccs); i++ {
		ccs[len(ccs)-1-i].NoProof = true
	}
	// Figure 1 extremes: 11 gTLDs + 2 ccTLDs entirely misconfigured.
	for i := 0; i < 11; i++ {
		gs[len(gs)-60-i].AllBroken = true
	}
	ccs[len(ccs)-40].AllBroken = true
	ccs[len(ccs)-41].AllBroken = true
	// Clean sets: 38% of gTLDs, 4% of ccTLDs have no misconfigured domain.
	for _, t := range gs {
		if !t.special() && rng.Float64() < 0.38 {
			t.Clean = true
		}
	}
	for _, t := range ccs {
		if !t.special() && rng.Float64() < 0.04 {
			t.Clean = true
		}
	}

	p.sizeTLDs(rng, scale)
}

func (t *TLD) special() bool {
	return t.Standby || t.BogusDenial || t.NoProof || t.AllBroken
}

// sizeTLDs distributes the domain budget: fixed sizes for special TLDs
// (calibrated to their class quotas), a Zipf tail for the rest with "com"
// absorbing the remainder.
func (p *Population) sizeTLDs(rng *rand.Rand, scale float64) {
	n := p.Config.TotalDomains

	// Quotas hosted by dedicated TLDs.
	standbyQuota := ClassQuota(ClassStandby, scale)
	bogusQuota := ClassQuota(ClassBogusTLD, scale)
	noProofQuota := ClassQuota(ClassNSECMissingTLD, scale)
	allBrokenQuota := maxInt(13, int(math.Round(108_000*scale)))

	var standbyCC, standbyG, bogus, noProof, allBroken []*TLD
	var normal []*TLD
	for _, t := range p.TLDs {
		switch {
		case t.Standby && t.CC:
			standbyCC = append(standbyCC, t)
		case t.Standby:
			standbyG = append(standbyG, t)
		case t.BogusDenial:
			bogus = append(bogus, t)
		case t.NoProof:
			noProof = append(noProof, t)
		case t.AllBroken:
			allBroken = append(allBroken, t)
		default:
			normal = append(normal, t)
		}
	}
	// 90% of the stand-by quota sits under the two big ccTLDs (paper:
	// 2.47M of 2.75M under two ccTLDs).
	ccShare := standbyQuota * 9 / 10
	spread(standbyCC, ccShare)
	spread(standbyG, standbyQuota-ccShare)
	spread(bogus, bogusQuota)
	spread(noProof, noProofQuota)
	spread(allBroken, allBrokenQuota)

	used := standbyQuota + bogusQuota + noProofQuota + allBrokenQuota
	rest := n - used
	if rest < len(normal) {
		rest = len(normal) // degenerate tiny scales: one domain per TLD
	}
	// Zipf over normal TLDs, exponent 1.05, with index 0 ("com") first.
	weights := make([]float64, len(normal))
	var sum float64
	for i := range normal {
		weights[i] = 1 / math.Pow(float64(i+1), 1.05)
		sum += weights[i]
	}
	assigned := 0
	for i, t := range normal {
		t.Domains = int(float64(rest) * weights[i] / sum)
		if t.Domains == 0 {
			t.Domains = 1
		}
		assigned += t.Domains
	}
	// Remainder (rounding dust) to the largest TLD.
	if assigned < rest {
		normal[0].Domains += rest - assigned
	} else if assigned > rest {
		normal[0].Domains -= assigned - rest
		if normal[0].Domains < 1 {
			normal[0].Domains = 1
		}
	}
}

func spread(tlds []*TLD, total int) {
	if len(tlds) == 0 {
		return
	}
	each := total / len(tlds)
	for _, t := range tlds {
		t.Domains = each
	}
	tlds[0].Domains += total - each*len(tlds)
	for _, t := range tlds {
		if t.Domains < 1 {
			t.Domains = 1
		}
	}
}

// buildDomains materializes the per-TLD domain names.
func (p *Population) buildDomains(rng *rand.Rand) {
	id := 0
	for _, t := range p.TLDs {
		for i := 0; i < t.Domains; i++ {
			id++
			name := dnswire.MustName(fmt.Sprintf("d%06d.%s", id, t.Label))
			p.Domains = append(p.Domains, &Domain{
				Name: name, TLD: t, Class: ClassHealthy, BrokenNS: -1,
			})
		}
	}
	p.Config.TotalDomains = len(p.Domains)
}

// assignClasses distributes the §4.2 class quotas over eligible domains.
func (p *Population) assignClasses(rng *rand.Rand, scale float64) {
	// Dedicated-TLD classes first.
	for _, d := range p.Domains {
		switch {
		case d.TLD.Standby:
			d.Class = ClassStandby
		case d.TLD.BogusDenial:
			d.Class = ClassBogusTLD
		case d.TLD.NoProof:
			d.Class = ClassNSECMissingTLD
		case d.TLD.AllBroken:
			d.Class = ClassLameRefused
		}
	}

	// Eligible pool for the remaining classes: normal, non-clean TLDs.
	// ccTLD domains are three times as likely to be picked, producing the
	// Figure 1 contrast between the gTLD and ccTLD curves.
	var pool []*Domain
	for _, d := range p.Domains {
		if d.Class == ClassHealthy && !d.TLD.Clean && !d.TLD.special() {
			pool = append(pool, d)
			if d.TLD.CC {
				pool = append(pool, d, d) // weight 3
			}
		}
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })

	classes := []Class{
		ClassLameRefused, ClassLameTimeout, ClassLameServfail,
		ClassPartialUpstream, ClassDNSKEYMismatch, ClassInvalidData,
		ClassUnsupportedAlg, ClassSigExpired, ClassUnsupportedDigest,
		ClassStale, ClassSigNotYet, ClassCachedError, ClassIterLoop,
	}
	idx := 0
	take := func() *Domain {
		for idx < len(pool) {
			d := pool[idx]
			idx++
			if d.Class == ClassHealthy {
				return d
			}
		}
		return nil
	}
	for _, class := range classes {
		quota := ClassQuota(class, scale)
		if class == ClassLameRefused {
			// The all-broken TLDs already contributed.
			for _, d := range p.Domains {
				if d.TLD.AllBroken {
					quota--
				}
			}
		}
		for i := 0; i < quota; i++ {
			d := take()
			if d == nil {
				break
			}
			d.Class = class
		}
	}

	// Coverage pass: the paper's Figure 1 has only 38% of gTLDs and 4% of
	// ccTLDs free of misconfigured domains — i.e. nearly every non-clean
	// TLD hosts at least one. Random assignment misses small TLDs at small
	// scales, so swap classes (count-preserving) from over-covered TLDs
	// into uncovered ones.
	misconfigured := func(c Class) bool { return c != ClassHealthy && c != ClassHealthySigned }
	perTLD := make(map[*TLD][]*Domain)
	for _, d := range p.Domains {
		if misconfigured(d.Class) && !d.TLD.special() && !d.TLD.Clean {
			perTLD[d.TLD] = append(perTLD[d.TLD], d)
		}
	}
	var donors []*Domain
	for _, ds := range perTLD {
		// A TLD keeps its first misconfigured domain; the rest may move.
		donors = append(donors, ds[1:]...)
	}
	sort.Slice(donors, func(i, j int) bool { return donors[i].Name < donors[j].Name })
	di := 0
	for _, d := range p.Domains {
		t := d.TLD
		if t.Clean || t.special() || len(perTLD[t]) > 0 || !healthyClass(d.Class) {
			continue
		}
		if di >= len(donors) {
			break
		}
		donor := donors[di]
		di++
		d.Class, donor.Class = donor.Class, d.Class
		perTLD[t] = append(perTLD[t], d)
	}

	// Signed healthy fraction.
	for _, d := range p.Domains {
		if d.Class == ClassHealthy && rng.Float64() < p.Config.HealthySignedFraction {
			d.Class = ClassHealthySigned
		}
	}
}

func healthyClass(c Class) bool { return c == ClassHealthy || c == ClassHealthySigned }

// assignBrokenNS builds the malfunctioning-nameserver pool (scaled from
// §4.2 item 2: 293k total — 267k REFUSED, 21k SERVFAIL, 15k timeout) and
// maps every lame domain to one, with the top-heavy weighting that makes
// "fixing the top ~7% of nameservers repair >80% of domains".
func (p *Population) assignBrokenNS(rng *rand.Rand) {
	scaleNS := func(n int) int { return maxInt(3, int(math.Round(float64(n)*p.Scale))) }
	nRefused := scaleNS(267_000)
	nServfail := scaleNS(21_000)
	nTimeout := scaleNS(15_000)

	mk := func(behavior string, n int, base int) []int {
		idxs := make([]int, n)
		for i := 0; i < n; i++ {
			p.BrokenNS = append(p.BrokenNS, BrokenNS{
				Addr:     netip.AddrFrom4([4]byte{198, 20, byte((base + i) / 250), byte((base+i)%250 + 1)}),
				Behavior: behavior,
			})
			idxs[i] = len(p.BrokenNS) - 1
		}
		return idxs
	}
	refused := mk("refused", nRefused, 0)
	servfail := mk("servfail", nServfail, nRefused)
	timeout := mk("timeout", nTimeout, nRefused+nServfail)

	// Two-tier concentration encoding §4.2 item 2 directly: 81% of stranded
	// domains sit behind the top ~6.8% of broken nameservers (the paper's
	// "fixing 20k of 293k repairs >81%"), Zipf-distributed within the head.
	zipf := zipfPicker(rng, 1.2)
	pick := func(n int) int {
		head := n * 68 / 1000
		if head < 1 {
			head = 1
		}
		if head >= n {
			return zipf(n)
		}
		if rng.Float64() < 0.81 {
			return zipf(head)
		}
		return head + rng.IntN(n-head)
	}
	for _, d := range p.Domains {
		var set []int
		switch d.Class {
		case ClassLameRefused, ClassPartialUpstream:
			set = refused
		case ClassLameServfail:
			set = servfail
		case ClassLameTimeout:
			set = timeout
		default:
			continue
		}
		i := set[pick(len(set))]
		d.BrokenNS = i
		p.BrokenNS[i].Domains++
	}
}

// zipfPicker returns a sampler over [0,n) with P(i) ∝ (i+1)^-s.
func zipfPicker(rng *rand.Rand, s float64) func(n int) int {
	return func(n int) int {
		// Inverse-CDF approximation for the continuous power law.
		u := rng.Float64()
		x := math.Pow(float64(n), 1-s)*u + (1 - u)
		idx := int(math.Pow(x, 1/(1-s))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		return idx
	}
}

// assignTranco builds the popularity ranking: TrancoSize ranks; 2.21% of
// them are EDE-triggering domains spread uniformly across ranks (Figure 2),
// of which ~55% come from NOERROR-with-EDE classes (the paper's 12.2k of
// 22.1k).
func (p *Population) assignTranco(rng *rand.Rand) {
	var healthy, advisory, failing []*Domain
	for _, d := range p.Domains {
		switch d.Class {
		case ClassHealthy, ClassHealthySigned:
			healthy = append(healthy, d)
		case ClassStandby, ClassPartialUpstream, ClassStale,
			ClassUnsupportedAlg, ClassUnsupportedDigest:
			advisory = append(advisory, d)
		default:
			failing = append(failing, d)
		}
	}
	rng.Shuffle(len(healthy), func(i, j int) { healthy[i], healthy[j] = healthy[j], healthy[i] })
	rng.Shuffle(len(advisory), func(i, j int) { advisory[i], advisory[j] = advisory[j], advisory[i] })
	rng.Shuffle(len(failing), func(i, j int) { failing[i], failing[j] = failing[j], failing[i] })

	edeSlots := int(math.Round(float64(p.TrancoSize) * 0.0221))
	advSlots := edeSlots * 55 / 100

	// Choose which ranks hold EDE domains: an even lattice (uniform spread).
	isEDE := make(map[int]bool, edeSlots)
	if edeSlots > 0 {
		step := p.TrancoSize / edeSlots
		for i := 0; i < edeSlots; i++ {
			isEDE[i*step+step/2] = true
		}
	}
	hi, ai, fi := 0, 0, 0
	for rank := 1; rank <= p.TrancoSize; rank++ {
		var d *Domain
		if isEDE[rank-1] {
			if ai < advSlots && ai < len(advisory) {
				d = advisory[ai]
				ai++
			} else if fi < len(failing) {
				d = failing[fi]
				fi++
			}
		}
		if d == nil && hi < len(healthy) {
			d = healthy[hi]
			hi++
		}
		if d != nil {
			d.Rank = rank
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// gTLDLabel produces generic TLD labels; the first few mirror the real
// heavyweights for readability.
func gTLDLabel(i int) string {
	known := []string{"com", "net", "org", "info", "xyz", "top", "online", "site", "shop", "club"}
	if i < len(known) {
		return known[i]
	}
	return fmt.Sprintf("gen%04d", i)
}

// ccTLDLabel produces two-letter-style country-code labels.
func ccTLDLabel(i int) string {
	known := []string{"de", "uk", "nl", "ru", "br", "fr", "it", "pl", "cn", "au", "se", "nu", "ch", "li"}
	if i < len(known) {
		return known[i]
	}
	return fmt.Sprintf("c%03d", i)
}
