package population

import (
	"testing"
)

func smallConfig() Config {
	// 1:100,000 scale — 3,030 domains; fast enough for unit tests while
	// still exercising every class.
	return Config{TotalDomains: 3030, Seed: 42}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallConfig())
	b := Generate(smallConfig())
	if len(a.Domains) != len(b.Domains) {
		t.Fatalf("domain counts differ: %d vs %d", len(a.Domains), len(b.Domains))
	}
	for i := range a.Domains {
		if a.Domains[i].Name != b.Domains[i].Name || a.Domains[i].Class != b.Domains[i].Class {
			t.Fatalf("domain %d differs: %v/%v vs %v/%v", i,
				a.Domains[i].Name, a.Domains[i].Class, b.Domains[i].Name, b.Domains[i].Class)
		}
	}
}

func TestEveryClassPresent(t *testing.T) {
	p := Generate(smallConfig())
	have := make(map[Class]int)
	for _, d := range p.Domains {
		have[d.Class]++
	}
	for c := ClassHealthy; c < numClasses; c++ {
		if have[c] == 0 {
			t.Errorf("class %s absent from population", c)
		}
	}
}

func TestClassQuotaScaling(t *testing.T) {
	scale := 1.0 / 1000
	if got := ClassQuota(ClassLameRefused, scale); got < 9000 || got > 11000 {
		t.Errorf("lame-refused quota = %d", got)
	}
	// Tiny classes floor at 1.
	if got := ClassQuota(ClassIterLoop, scale); got != 1 {
		t.Errorf("iter-loop quota = %d, want 1", got)
	}
	if got := ClassQuota(ClassHealthy, scale); got != 0 {
		t.Errorf("healthy quota = %d, want 0", got)
	}
}

func TestOverallEDERateNearPaper(t *testing.T) {
	p := Generate(Config{TotalDomains: 30300, Seed: 7})
	ede := 0
	for _, d := range p.Domains {
		switch d.Class {
		case ClassHealthy, ClassHealthySigned:
		default:
			ede++
		}
	}
	rate := float64(ede) / float64(len(p.Domains))
	// Paper: 17.7M / 303M = 5.84%.
	if rate < 0.045 || rate > 0.075 {
		t.Errorf("EDE class rate = %.4f, want ~0.058", rate)
	}
}

func TestTLDStructure(t *testing.T) {
	p := Generate(smallConfig())
	if len(p.TLDs) != 1475 {
		t.Fatalf("TLD count = %d", len(p.TLDs))
	}
	var cc, g, clean, allBroken, standby int
	for _, tld := range p.TLDs {
		if tld.CC {
			cc++
		} else {
			g++
		}
		if tld.Clean {
			clean++
		}
		if tld.AllBroken {
			allBroken++
		}
		if tld.Standby {
			standby++
		}
	}
	if cc != 315 || g != 1160 {
		t.Errorf("cc=%d g=%d", cc, g)
	}
	if allBroken != 13 {
		t.Errorf("allBroken TLDs = %d, want 13 (11 gTLD + 2 ccTLD)", allBroken)
	}
	if standby != 24 {
		t.Errorf("standby TLDs = %d, want 24 (2 ccTLD + 22 suffixes)", standby)
	}
	if clean == 0 {
		t.Error("no clean TLDs")
	}
}

func TestCleanTLDsHaveNoMisconfiguredDomains(t *testing.T) {
	p := Generate(smallConfig())
	for _, d := range p.Domains {
		if d.TLD.Clean && d.Class != ClassHealthy && d.Class != ClassHealthySigned {
			t.Fatalf("clean TLD %s hosts %s domain %s", d.TLD.Label, d.Class, d.Name)
		}
	}
}

func TestAllBrokenTLDsFullyMisconfigured(t *testing.T) {
	p := Generate(smallConfig())
	for _, d := range p.Domains {
		if d.TLD.AllBroken && (d.Class == ClassHealthy || d.Class == ClassHealthySigned) {
			t.Fatalf("all-broken TLD %s hosts healthy domain %s", d.TLD.Label, d.Name)
		}
	}
}

func TestBrokenNSConcentration(t *testing.T) {
	p := Generate(Config{TotalDomains: 30300, Seed: 3})
	counts := make([]int, 0, len(p.BrokenNS))
	total := 0
	for _, ns := range p.BrokenNS {
		if ns.Domains > 0 {
			counts = append(counts, ns.Domains)
			total += ns.Domains
		}
	}
	if total == 0 {
		t.Fatal("no lame domains assigned")
	}
	// Sort descending and measure the top-6.8% share — the paper's "fixing
	// 20k of 293k nameservers repairs >81% of domains".
	for i := 0; i < len(counts); i++ {
		for j := i + 1; j < len(counts); j++ {
			if counts[j] > counts[i] {
				counts[i], counts[j] = counts[j], counts[i]
			}
		}
	}
	k := len(p.BrokenNS) * 68 / 1000
	if k < 1 {
		k = 1
	}
	fixed := 0
	for i := 0; i < k && i < len(counts); i++ {
		fixed += counts[i]
	}
	share := float64(fixed) / float64(total)
	if share < 0.55 || share > 0.98 {
		t.Errorf("top-%d nameservers repair %.2f of domains, want top-heavy (~0.81)", k, share)
	}
}

func TestTrancoAssignment(t *testing.T) {
	p := Generate(Config{TotalDomains: 30300, Seed: 9})
	ranked := 0
	edeRanked := 0
	for _, d := range p.Domains {
		if d.Rank == 0 {
			continue
		}
		ranked++
		if d.Rank < 1 || d.Rank > p.TrancoSize {
			t.Fatalf("rank %d out of range", d.Rank)
		}
		switch d.Class {
		case ClassHealthy, ClassHealthySigned:
		default:
			edeRanked++
		}
	}
	if ranked == 0 {
		t.Fatal("no ranked domains")
	}
	frac := float64(edeRanked) / float64(ranked)
	// Paper: 22.1k of 1M = 2.21%.
	if frac < 0.01 || frac > 0.04 {
		t.Errorf("EDE fraction of Tranco = %.4f, want ~0.0221", frac)
	}
}

func TestCCTLDsMoreMisconfigured(t *testing.T) {
	p := Generate(Config{TotalDomains: 30300, Seed: 11})
	var gTotal, gEDE, ccTotal, ccEDE int
	for _, d := range p.Domains {
		if d.TLD.special() {
			continue
		}
		bad := d.Class != ClassHealthy && d.Class != ClassHealthySigned
		if d.TLD.CC {
			ccTotal++
			if bad {
				ccEDE++
			}
		} else {
			gTotal++
			if bad {
				gEDE++
			}
		}
	}
	gRate := float64(gEDE) / float64(gTotal)
	ccRate := float64(ccEDE) / float64(ccTotal)
	if ccRate <= gRate {
		t.Errorf("ccTLD rate %.4f not above gTLD rate %.4f (Figure 1 contrast)", ccRate, gRate)
	}
}
