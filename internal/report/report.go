// Package report renders the reproduction's tables and figures as text:
// the §4.2 per-code table, ASCII CDF plots for Figures 1 and 2, CSV series
// for external plotting, and the agreement summaries of §3.3.
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/extended-dns-errors/edelab/internal/ede"
	"github.com/extended-dns-errors/edelab/internal/scan"
)

// Section42Table renders the wild-scan per-code counts in the paper's §4.2
// layout: code, name, domain count, share of the population.
func Section42Table(agg *scan.Aggregate) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Wild scan: %d domains, %d (%.2f%%) triggered EDE codes\n",
		agg.Total, agg.WithEDE, 100*float64(agg.WithEDE)/float64(agg.Total))
	fmt.Fprintf(&b, "%d domains answered NOERROR while carrying EDEs\n\n", agg.NoErrorWithEDE)
	fmt.Fprintf(&b, "%-4s %-34s %10s %9s\n", "EDE", "Name", "Domains", "Share")
	for _, code := range agg.CodesByCount() {
		count := agg.CodeCounts[code]
		fmt.Fprintf(&b, "%-4d %-34s %10d %8.4f%%\n",
			code, ede.Code(code).Name(), count, 100*float64(count)/float64(agg.Total))
	}
	return b.String()
}

// CDFPlot renders an ASCII CDF: x values against cumulative probability,
// using a fixed-size grid. Multiple series share the plot, keyed by rune.
type CDFSeries struct {
	Label  string
	Marker rune
	Xs     []float64 // sample values (unsorted ok)
}

// CDFPlot draws the series into a width×height character grid with axis
// legends — enough to eyeball the Figure 1/2 shapes in a terminal.
func CDFPlot(title, xlabel string, width, height int, series ...CDFSeries) string {
	if width < 20 {
		width = 60
	}
	if height < 5 {
		height = 16
	}
	var xmax float64
	for _, s := range series {
		for _, x := range s.Xs {
			if x > xmax {
				xmax = x
			}
		}
	}
	if xmax == 0 {
		xmax = 1
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = make([]rune, width)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	for _, s := range series {
		xs, ys := scan.CDF(s.Xs)
		for i := range xs {
			col := int(xs[i] / xmax * float64(width-1))
			row := height - 1 - int(ys[i]*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = s.Marker
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for i, row := range grid {
		y := 1 - float64(i)/float64(height-1)
		fmt.Fprintf(&b, "%4.2f |%s|\n", y, string(row))
	}
	fmt.Fprintf(&b, "      %s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "      0%s%.4g\n", strings.Repeat(" ", width-len(fmt.Sprintf("%.4g", xmax))-1), xmax)
	fmt.Fprintf(&b, "      x: %s\n", xlabel)
	for _, s := range series {
		fmt.Fprintf(&b, "      %c = %s (n=%d)\n", s.Marker, s.Label, len(s.Xs))
	}
	return b.String()
}

// CSV renders aligned (x, y) series as CSV with one header row, for
// regenerating the figures in real plotting tools.
func CSV(header []string, rows [][]float64) string {
	var b strings.Builder
	b.WriteString(strings.Join(header, ","))
	b.WriteString("\n")
	for _, row := range rows {
		parts := make([]string, len(row))
		for i, v := range row {
			if v == math.Trunc(v) {
				parts[i] = fmt.Sprintf("%d", int64(v))
			} else {
				parts[i] = fmt.Sprintf("%.6f", v)
			}
		}
		b.WriteString(strings.Join(parts, ","))
		b.WriteString("\n")
	}
	return b.String()
}

// Figure1CSV renders the per-TLD ratio CDFs as CSV (series column selects
// gTLD/ccTLD).
func Figure1CSV(gtld, cctld []float64) string {
	var rows [][]float64
	gx, gy := scan.CDF(gtld)
	for i := range gx {
		rows = append(rows, []float64{0, gx[i], gy[i]})
	}
	cx, cy := scan.CDF(cctld)
	for i := range cx {
		rows = append(rows, []float64{1, cx[i], cy[i]})
	}
	return CSV([]string{"series(0=gTLD 1=ccTLD)", "ratio_percent", "cdf"}, rows)
}

// Figure2CSV renders the Tranco-rank CDF as CSV.
func Figure2CSV(stats scan.TrancoStats) string {
	var rows [][]float64
	for i, r := range stats.Ranks {
		rows = append(rows, []float64{float64(r), float64(i+1) / float64(len(stats.Ranks))})
	}
	return CSV([]string{"rank", "cdf"}, rows)
}

// AgreementSummary renders the §3.3 headline statistics.
func AgreementSummary(stats ede.AgreementStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Test cases:            %d\n", stats.TotalCases)
	fmt.Fprintf(&b, "Full agreement:        %d (%s)\n", stats.AgreeCases, strings.Join(stats.AgreeCaseList, ", "))
	fmt.Fprintf(&b, "Disagreement ratio:    %.1f%%\n", 100*stats.DisagreeRatio)
	fmt.Fprintf(&b, "Unique INFO-CODEs:     %d %v\n", stats.UniqueCodes, stats.UniqueCodeList)
	systems := make([]string, 0, len(stats.PerSystemCodes))
	for sys := range stats.PerSystemCodes {
		systems = append(systems, sys)
	}
	sort.Strings(systems)
	for _, sys := range systems {
		fmt.Fprintf(&b, "  %-18s %d distinct codes\n", sys, stats.PerSystemCodes[sys])
	}
	return b.String()
}

// FixCurve renders the §4.2 item 2 fix-top-k nameserver curve.
func FixCurve(conc scan.NSConcentration, steps []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Broken nameservers: %d, stranded domains: %d\n", len(conc.Counts), conc.TotalDomains)
	fmt.Fprintf(&b, "%8s %12s\n", "fix top", "repaired")
	for _, k := range steps {
		fmt.Fprintf(&b, "%8d %11.1f%%\n", k, 100*conc.FixedShare(k))
	}
	return b.String()
}
