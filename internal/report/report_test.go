package report

import (
	"strings"
	"testing"

	"github.com/extended-dns-errors/edelab/internal/dnswire"
	"github.com/extended-dns-errors/edelab/internal/ede"
	"github.com/extended-dns-errors/edelab/internal/scan"
)

func sampleAggregate() *scan.Aggregate {
	results := []scan.Result{
		{Domain: dnswire.MustName("a.com"), RCode: dnswire.RCodeServFail, Codes: []uint16{22, 23}},
		{Domain: dnswire.MustName("b.com"), RCode: dnswire.RCodeServFail, Codes: []uint16{22}},
		{Domain: dnswire.MustName("c.com"), RCode: dnswire.RCodeNoError, Codes: []uint16{10}},
		{Domain: dnswire.MustName("d.com"), RCode: dnswire.RCodeNoError},
	}
	return scan.Summarize(results)
}

func TestSection42Table(t *testing.T) {
	out := Section42Table(sampleAggregate())
	for _, want := range []string{
		"4 domains, 3 (75.00%)",
		"1 domains answered NOERROR",
		"No Reachable Authority",
		"RRSIGs Missing",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// 22 (2 domains) must be listed before 10 and 23 (1 each).
	if strings.Index(out, "No Reachable Authority") > strings.Index(out, "Network Error") {
		t.Error("codes not ordered by count")
	}
}

func TestCDFPlotShape(t *testing.T) {
	out := CDFPlot("test plot", "value", 40, 8,
		CDFSeries{Label: "s1", Marker: '*', Xs: []float64{1, 2, 3, 4, 5}})
	if !strings.Contains(out, "test plot") || !strings.Contains(out, "* = s1 (n=5)") {
		t.Errorf("plot missing title/legend:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Error("no data points plotted")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 10 {
		t.Errorf("plot too short: %d lines", len(lines))
	}
}

func TestCDFPlotEmptySeries(t *testing.T) {
	out := CDFPlot("empty", "x", 40, 8, CDFSeries{Label: "none", Marker: '.'})
	if !strings.Contains(out, "empty") {
		t.Error("empty plot unrenderable")
	}
}

func TestCSV(t *testing.T) {
	out := CSV([]string{"a", "b"}, [][]float64{{1, 0.5}, {2, 1}})
	want := "a,b\n1,0.500000\n2,1\n"
	if out != want {
		t.Errorf("CSV = %q, want %q", out, want)
	}
}

func TestFigureCSVs(t *testing.T) {
	f1 := Figure1CSV([]float64{0, 10, 20}, []float64{50, 100})
	if !strings.HasPrefix(f1, "series(0=gTLD 1=ccTLD),ratio_percent,cdf\n") {
		t.Errorf("figure 1 header: %q", f1[:50])
	}
	if strings.Count(f1, "\n") != 6 {
		t.Errorf("figure 1 rows = %d", strings.Count(f1, "\n")-1)
	}
	f2 := Figure2CSV(scan.TrancoStats{ListSize: 100, Ranks: []int{10, 50, 90}})
	if strings.Count(f2, "\n") != 4 {
		t.Errorf("figure 2 rows: %q", f2)
	}
}

func TestAgreementSummary(t *testing.T) {
	m := ede.NewMatrix([]string{"X", "Y"})
	m.Record("c1", "X", ede.Set{9})
	m.Record("c1", "Y", ede.Set{6})
	out := AgreementSummary(m.Agreement())
	for _, want := range []string{"Test cases:            1", "Disagreement ratio:    100.0%", "Unique INFO-CODEs:     2"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestFixCurve(t *testing.T) {
	conc := scan.NSConcentration{Counts: []int{80, 15, 5}, TotalDomains: 100}
	out := FixCurve(conc, []int{1, 2, 3})
	for _, want := range []string{"80.0%", "95.0%", "100.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("curve missing %q:\n%s", want, out)
		}
	}
}
