// Command edescan reproduces Section 4 of the paper: it generates the
// synthetic registered-domain population (default 1:1,000 scale — 303,000
// domains), scans it through the Cloudflare-profile resolver zdns-style, and
// prints the §4.2 per-code table, Figures 1 and 2, and the nameserver
// concentration analysis.
//
// Usage:
//
//	edescan                      # full run at default scale
//	edescan -domains 30300       # 1:10,000 scale
//	edescan -figure 1 -csv       # Figure 1 data as CSV
//	edescan -fixcurve            # §4.2 item 2 fix-top-k curve
//
// Campaign mode (-shards > 0) runs one shard of a sharded, checkpointed,
// rate-limited campaign; shard snapshots merge with edereport -merge:
//
//	edescan -shards 4 -shard 0 -checkpoint-dir ckpt -progress 2s
//	edescan -shards 4 -shard 0 -checkpoint-dir ckpt -resume   # after a kill
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/extended-dns-errors/edelab/internal/campaign"
	"github.com/extended-dns-errors/edelab/internal/netsim"
	"github.com/extended-dns-errors/edelab/internal/population"
	"github.com/extended-dns-errors/edelab/internal/report"
	"github.com/extended-dns-errors/edelab/internal/resolver"
	"github.com/extended-dns-errors/edelab/internal/scan"
	"github.com/extended-dns-errors/edelab/internal/telemetry"
)

func main() {
	domains := flag.Int("domains", population.PaperTotal/1000, "population size (paper: 303M; default 1:1,000)")
	seed := flag.Uint64("seed", 20230515, "population seed")
	workers := flag.Int("workers", 64, "scanner concurrency")
	figure := flag.Int("figure", 0, "print only figure 1 or 2")
	csv := flag.Bool("csv", false, "emit figure data as CSV instead of ASCII plots")
	fixcurve := flag.Bool("fixcurve", false, "print the broken-nameserver fix curve")
	profile := flag.String("profile", "cloudflare", "vendor profile (cloudflare, bind, unbound, powerdns, knot, quad9, opendns) or 'compare' for all")
	whatifFix := flag.Int("whatif-fix", 0, "after the scan, repair the k busiest broken nameservers and re-scan (the paper's 'fixing 20k repairs >81%' counterfactual)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (taken after the scan) to this file")
	chaos := flag.String("chaos", "", "inject faults into the simulated network, e.g. 'loss=0.2,lat=100ms' (see internal/netsim.ParseFaultProfile)")
	chaosSeed := flag.Uint64("chaos-seed", 20230515, "seed for the fault plan; same seed + same flags replays the identical scan")
	retries := flag.Int("retries", 0, "resolver attempts per authoritative server (0 = single-shot legacy behaviour)")
	retryBudget := flag.Int("retry-budget", 0, "total upstream queries per resolution step across all servers (0 = unlimited)")
	aggOnly := flag.Bool("agg-only", false, "stream results straight into the aggregates without materializing per-domain results (O(workers) memory; required headroom for 303M-scale runs)")
	progress := flag.Duration("progress", 0, "print live scan progress (domains/sec, queries/resolution, aggregate EDE counts) to stderr at this interval, e.g. -progress 2s")
	shards := flag.Int("shards", 0, "campaign mode: total shard count (0 = classic single-process scan)")
	shard := flag.Int("shard", 0, "campaign mode: this process's 0-based shard index")
	checkpointDir := flag.String("checkpoint-dir", "", "campaign mode: directory for shard checkpoint snapshots")
	checkpointInterval := flag.Duration("checkpoint-interval", 5*time.Second, "campaign mode: wall time between periodic checkpoint writes")
	resume := flag.Bool("resume", false, "campaign mode: continue from the shard's checkpoint instead of starting over")
	maxQPS := flag.Float64("max-qps", 0, "campaign mode: global upstream queries/sec cap for this shard (0 = unlimited)")
	authorityQPS := flag.Float64("authority-qps", 0, "campaign mode: upstream queries/sec cap per authoritative address (0 = unlimited)")
	scale := flag.Float64("scale", 0, "population as a multiple of the 1:1 reference scale (303,000 domains); overrides -domains when > 0")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edescan: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "edescan: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "edescan: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "edescan: memprofile: %v\n", err)
			}
		}()
	}

	if *scale > 0 {
		*domains = int(*scale * float64(population.PaperTotal/1000))
	}
	fmt.Fprintf(os.Stderr, "generating population: %d domains across 1,475 TLDs (seed %d) ...\n", *domains, *seed)
	pop := population.Generate(population.Config{TotalDomains: *domains, Seed: *seed})
	wild, err := population.Materialize(pop)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edescan: materialize: %v\n", err)
		os.Exit(1)
	}

	if *chaos != "" {
		fp, err := netsim.ParseFaultProfile(*chaos)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edescan: -chaos: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "injecting faults: %s (seed %d)\n", fp, *chaosSeed)
		wild.Net.SetFaults(netsim.NewFaultPlan(*chaosSeed, fp))
	}
	var tc *resolver.TransportConfig
	if *retries > 0 || *retryBudget > 0 {
		tc = &resolver.TransportConfig{
			Retries:     *retries,
			RetryBudget: *retryBudget,
			Backoff:     50 * time.Millisecond,
		}
	}

	if *profile == "compare" {
		compareProfiles(wild, *workers, tc)
		return
	}
	prof, ok := profileByName(*profile)
	if !ok {
		fmt.Fprintf(os.Stderr, "edescan: unknown profile %q\n", *profile)
		os.Exit(2)
	}

	if *shards > 0 {
		runCampaign(wild, campaignRun{
			shards: *shards, shard: *shard, workers: *workers,
			profile: prof, transport: tc,
			checkpointDir: *checkpointDir, checkpointInterval: *checkpointInterval,
			resume: *resume, maxQPS: *maxQPS, authorityQPS: *authorityQPS,
			progress: *progress,
		})
		return
	}
	fmt.Fprintf(os.Stderr, "scanning %d domains with %d workers (%s profile) ...\n", len(pop.Domains), *workers, prof.Name)

	// The scan streams: every finished result folds into the mergeable
	// aggregates as it completes. Without -agg-only the per-domain results
	// are additionally materialized (the historical behaviour, useful with
	// -memprofile); with it the scan runs in O(workers) live results.
	r := resolver.New(wild.Net, wild.Roots, wild.Anchor, prof)
	r.Now = wild.Now
	r.Transport = tc
	scanner := scan.NewScanner(r)
	if *workers > 0 {
		scanner.Workers = *workers
	}
	ctx := context.Background()
	if warm := wild.WarmupDomains(); len(warm) > 0 {
		scanner.Scan(ctx, warm)
		wild.AdvanceClock(2 * time.Hour)
	}

	var (
		mu        sync.Mutex
		agg       = scan.NewAggregate()
		tldAgg    = scan.NewTLDAggregate(pop)
		trancoAgg = scan.NewTrancoAggregate(pop)
		results   []scan.Result
		done      atomic.Int64
	)
	// The telemetry registry is the single snapshot source for progress: the
	// resolver, the simulated network, and the scan's done counter register
	// their views once, and the -progress loop reads the same series a
	// /metrics scrape of edeserver would.
	reg := telemetry.NewRegistry()
	r.RegisterMetrics(reg)
	wild.Net.RegisterMetrics(reg)
	reg.GaugeFunc("edelab_scan_domains_done",
		"Domains finished in the current scan.",
		func() float64 { return float64(done.Load()) })
	regValue := func(name string) float64 {
		v, _ := reg.Value(name)
		return v
	}
	qBase := regValue("edelab_resolver_queries_total")
	rBase := regValue("edelab_resolver_resolutions_total")
	stopProgress := make(chan struct{})
	if *progress > 0 {
		go func() {
			tick := time.NewTicker(*progress)
			defer tick.Stop()
			var lastDone int64
			lastT := time.Now()
			for {
				select {
				case <-stopProgress:
					return
				case <-tick.C:
					d := int64(regValue("edelab_scan_domains_done"))
					queries := regValue("edelab_resolver_queries_total") - qBase
					resolutions := regValue("edelab_resolver_resolutions_total") - rBase
					rate := float64(d-lastDone) / time.Since(lastT).Seconds()
					lastDone, lastT = d, time.Now()
					qpr := 0.0
					if resolutions > 0 {
						qpr = queries / resolutions
					}
					mu.Lock()
					top := topCodes(agg, 4)
					mu.Unlock()
					fmt.Fprintf(os.Stderr, "progress: %d/%d domains (%.0f/s), ETA %s, %.2f queries/resolution, EDE %s\n",
						d, len(pop.Domains), rate, etaString(uint64(len(pop.Domains))-uint64(d), rate), qpr, top)
				}
			}
		}()
	}

	start := time.Now()
	n := scanner.ScanStream(ctx, pop.Names(), func(res scan.Result) {
		mu.Lock()
		agg.Add(res)
		tldAgg.Add(res)
		trancoAgg.Add(res)
		if !*aggOnly {
			results = append(results, res)
		}
		mu.Unlock()
		done.Add(1)
	})
	elapsed := time.Since(start)
	close(stopProgress)
	_ = results // retained for heap profiles of the non-streaming shape

	switch *figure {
	case 1:
		rows := tldAgg.Rows()
		g, cc := scan.Figure1(rows)
		if *csv {
			fmt.Print(report.Figure1CSV(g, cc))
			return
		}
		fmt.Print(report.CDFPlot(
			"Figure 1: ratio of domains that trigger EDE codes across gTLDs and ccTLDs",
			"ratio of domains (%)", 64, 16,
			report.CDFSeries{Label: "gTLDs", Marker: 'g', Xs: g},
			report.CDFSeries{Label: "ccTLDs", Marker: 'c', Xs: cc},
		))
		fmt.Printf("zero-misconfiguration TLDs: gTLD %.0f%%, ccTLD %.0f%% (paper: 38%% / 4%%)\n",
			100*scan.ZeroRatioShare(g), 100*scan.ZeroRatioShare(cc))
		fmt.Printf("fully-misconfigured TLDs: %d (paper: 11 gTLDs + 2 ccTLDs)\n",
			scan.FullRatioCount(g)+scan.FullRatioCount(cc))
		return
	case 2:
		stats := trancoAgg.Stats()
		if *csv {
			fmt.Print(report.Figure2CSV(stats))
			return
		}
		xs := make([]float64, len(stats.Ranks))
		for i, r := range stats.Ranks {
			xs[i] = float64(r)
		}
		fmt.Print(report.CDFPlot(
			"Figure 2: distribution of EDE-triggering domains across the Tranco-style list",
			fmt.Sprintf("rank (list size %d ≈ scaled 1M)", stats.ListSize), 64, 16,
			report.CDFSeries{Label: "EDE domains", Marker: '*', Xs: xs},
		))
		fmt.Printf("Tranco overlap: %d of %d ranked domains trigger EDEs (paper: 22.1k of 1M)\n",
			stats.Overlap, stats.ListSize)
		fmt.Printf("NOERROR among them: %d (paper: 12.2k)\n", stats.NoError)
		return
	}

	if *fixcurve {
		conc := scan.NSFromPopulation(pop)
		steps := []int{1, 2, 3, 6, 10, 20, 50, 100, len(conc.Counts)}
		fmt.Print(report.FixCurve(conc, steps))
		return
	}

	fmt.Print(report.Section42Table(agg))

	if *whatifFix > 0 {
		fmt.Printf("\nwhat-if: repairing the %d busiest broken nameservers and re-scanning ...\n", *whatifFix)
		repaired := wild.RepairTopNameservers(*whatifFix)
		r2 := resolver.New(wild.Net, wild.Roots, wild.Anchor, prof)
		r2.Now = wild.Now
		s2 := scan.NewScanner(r2)
		after := scan.NewAggregate()
		s2.ScanStream(context.Background(), pop.Names(), func(res scan.Result) { after.Add(res) })
		fixed := agg.CodeCounts[22] - after.CodeCounts[22]
		fmt.Printf("repaired %d nameservers: EDE-22 domains %d -> %d (%.1f%% of stranded domains recovered)\n",
			repaired, agg.CodeCounts[22], after.CodeCounts[22],
			100*float64(fixed)/float64(agg.CodeCounts[22]))
	}
	fmt.Println()
	fmt.Printf("scan: %d resolver queries in %v (%.0f resolutions/s, %.0f queries/s, %.2f queries/resolution)\n",
		scanner.QueryCount, elapsed.Round(time.Millisecond),
		float64(n)/elapsed.Seconds(), float64(scanner.QueryCount)/elapsed.Seconds(),
		scanner.QueriesPerResolution)
	st := wild.Net.Stats()
	fmt.Printf("network: %d queries (%d answered, %d unroutable, %d unreachable)\n",
		st.Queries, st.Answered, st.Unroutable, st.Unreachable)
}

// campaignRun carries the campaign-mode flag values.
type campaignRun struct {
	shards, shard, workers int
	profile                *resolver.Profile
	transport              *resolver.TransportConfig
	checkpointDir          string
	checkpointInterval     time.Duration
	resume                 bool
	maxQPS, authorityQPS   float64
	progress               time.Duration
}

// runCampaign executes one shard of a sharded, checkpointed, rate-limited
// campaign and prints its §4.2 table. The persisted snapshot merges with the
// other shards' via edereport -merge.
func runCampaign(wild *population.Wild, cr campaignRun) {
	cfg := campaign.Config{
		Shards:  cr.shards,
		Shard:   cr.shard,
		Workers: cr.workers,
		Profile: cr.profile, Transport: cr.transport,
		CheckpointInterval: cr.checkpointInterval,
		Resume:             cr.resume,
		AuthorityQPS:       cr.authorityQPS,
		MaxQPS:             cr.maxQPS,
		Governor:           &campaign.GovernorConfig{},
		Registry:           telemetry.NewRegistry(),
	}
	if cr.checkpointDir != "" {
		if err := os.MkdirAll(cr.checkpointDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "edescan: -checkpoint-dir: %v\n", err)
			os.Exit(1)
		}
		cfg.CheckpointPath = campaign.CheckpointFile(cr.checkpointDir, cr.shard, cr.shards)
	}
	runner, err := campaign.New(cfg, wild)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edescan: %v\n", err)
		os.Exit(2)
	}
	lo, hi := campaign.ShardRange(len(wild.Pop.Domains), cr.shard, cr.shards)
	fmt.Fprintf(os.Stderr, "campaign: shard %d/%d scanning domains [%d,%d) with %d workers (%s profile)\n",
		cr.shard, cr.shards, lo, hi, cfg.Workers, cr.profile.Name)
	if cr.resume && cfg.CheckpointPath != "" {
		// Peek at the checkpoint header for the operator's benefit; Run
		// re-reads and fully validates it (and reports a missing or
		// mismatched file properly), so decode errors are not fatal here.
		if raw, err := os.ReadFile(cfg.CheckpointPath); err == nil {
			if prev, err := scan.DecodeSnapshot(raw); err == nil {
				fmt.Fprintf(os.Stderr, "campaign: resuming from checkpoint at position %d/%d (%d queries persisted)\n",
					prev.Position, hi-lo, prev.Queries)
			}
		}
	}

	stopProgress := make(chan struct{})
	if cr.progress > 0 {
		go func() {
			tick := time.NewTicker(cr.progress)
			defer tick.Stop()
			for {
				select {
				case <-stopProgress:
					return
				case <-tick.C:
					done, total, rate := runner.Progress()
					pct := 0.0
					if total > 0 {
						pct = 100 * float64(done) / float64(total)
					}
					conc := cfg.Workers
					if g := runner.Governor(); g != nil {
						conc = g.Concurrency()
					}
					fmt.Fprintf(os.Stderr, "progress: shard %d/%d: %d/%d domains (%.1f%%, %.0f/s), ETA %s, concurrency %d\n",
						cr.shard, cr.shards, done, total, pct, rate, etaString(total-done, rate), conc)
				}
			}
		}()
	}

	start := time.Now()
	snap, err := runner.Run(context.Background())
	elapsed := time.Since(start)
	close(stopProgress)
	if err != nil {
		if errors.Is(err, campaign.ErrInterrupted) && cfg.CheckpointPath != "" {
			fmt.Fprintf(os.Stderr, "edescan: campaign: %v\nresume with: edescan -shards %d -shard %d -checkpoint-dir %s -resume\n",
				err, cr.shards, cr.shard, cr.checkpointDir)
		} else {
			fmt.Fprintf(os.Stderr, "edescan: campaign: %v\n", err)
		}
		os.Exit(1)
	}

	fmt.Print(report.Section42Table(snap.Agg))
	fmt.Println()
	done, total, _ := runner.Progress()
	fmt.Printf("campaign: shard %d/%d complete: %d/%d domains, %d upstream queries in %v (%.0f domains/s)\n",
		cr.shard, cr.shards, done, total, snap.Queries, elapsed.Round(time.Millisecond),
		float64(done)/elapsed.Seconds())
	if l := runner.Limiter(); l != nil {
		fmt.Printf("campaign: limiter admitted %d queries, %d waits\n", l.Admitted(), l.Denied())
	}
	if cfg.CheckpointPath != "" {
		fmt.Printf("campaign: snapshot written to %s (merge with: edereport -merge %s/shard-*.snap)\n",
			cfg.CheckpointPath, cr.checkpointDir)
	}
}

// etaString formats the time left at the current rate for progress lines.
func etaString(remaining uint64, rate float64) string {
	if rate <= 0 {
		return "n/a"
	}
	return time.Duration(float64(remaining) / rate * float64(time.Second)).Round(time.Second).String()
}

// topCodes formats the k most frequent EDE codes as "code:count ..." for the
// progress line.
func topCodes(agg *scan.Aggregate, k int) string {
	codes := agg.CodesByCount()
	if len(codes) == 0 {
		return "(none)"
	}
	if len(codes) > k {
		codes = codes[:k]
	}
	var b strings.Builder
	for i, c := range codes {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", c, agg.CodeCounts[c])
	}
	return b.String()
}

// profileByName maps CLI names to vendor profiles.
func profileByName(name string) (*resolver.Profile, bool) {
	switch name {
	case "cloudflare":
		return resolver.ProfileCloudflare(), true
	case "bind":
		return resolver.ProfileBIND9(), true
	case "unbound":
		return resolver.ProfileUnbound(), true
	case "powerdns":
		return resolver.ProfilePowerDNS(), true
	case "knot":
		return resolver.ProfileKnot(), true
	case "quad9":
		return resolver.ProfileQuad9(), true
	case "opendns":
		return resolver.ProfileOpenDNS(), true
	}
	return nil, false
}

// compareProfiles runs the multi-vendor extension: the same population
// scanned under every profile (the paper scanned Cloudflare only).
func compareProfiles(wild *population.Wild, workers int, tc *resolver.TransportConfig) {
	byProfile := make(map[string][]scan.Result)
	for _, p := range resolver.AllProfiles() {
		fmt.Fprintf(os.Stderr, "scanning under %s ...\n", p.Name)
		results, _ := scan.WildScanTransport(context.Background(), wild, p, workers, tc)
		byProfile[p.Name] = results
	}
	rows := scan.CompareProfiles(byProfile)
	fmt.Printf("%-18s %14s %14s %12s\n", "profile", "EDE domains", "distinct codes", "SERVFAILs")
	for _, r := range rows {
		fmt.Printf("%-18s %14d %14d %12d\n", r.Profile, r.DomainsWithEDE, r.DistinctCodes, r.Servfails)
	}
	fmt.Println("\ndetection is shared (similar SERVFAIL counts); EDE visibility is not —")
	fmt.Println("the paper chose Cloudflare for the wild scan because it reports the most.")
}
