// Command edechaos runs declarative chaos scenarios: spec files that name a
// topology driver, a per-phase fault schedule, actions, and a steady-state
// hypothesis of expected RCODE/EDE cells plus telemetry probes.
//
//	edechaos run scenarios/frontend-shed-under-load.scn
//	edechaos run scenario.scn -seed 7
//	edechaos suite scenarios/
//	edechaos suite scenarios/ -seed 3 -v
//
// Every run prints its effective seed (and embeds it in the verdict report):
// a failing scenario is reproducible from its output alone. The suite
// subcommand renders a verdict table over every *.scn file in the directory
// and exits nonzero when any scenario FAILs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/extended-dns-errors/edelab/internal/scenario"
)

// defaultSeed is the chaos convention seed shared with the chaostest golden
// corpus.
const defaultSeed = 20230515

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "run":
		os.Exit(runCmd(os.Args[2:]))
	case "suite":
		os.Exit(suiteCmd(os.Args[2:]))
	default:
		fmt.Fprintf(os.Stderr, "edechaos: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  edechaos run <scenario-file> [-seed N]
  edechaos suite <dir> [-seed N] [-v]`)
}

func runCmd(args []string) int {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	seed := fs.Uint64("seed", defaultSeed, "deterministic seed; the run is a pure function of (scenario, seed)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
		return 2
	}
	sc, err := scenario.ParseFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "edechaos: %v\n", err)
		return 2
	}
	fmt.Printf("effective seed: %d\n", *seed)
	res, err := scenario.Run(context.Background(), sc, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edechaos: %v\n", err)
		return 2
	}
	fmt.Print(res.Report())
	if res.Verdict == scenario.VerdictFail {
		return 1
	}
	return 0
}

func suiteCmd(args []string) int {
	fs := flag.NewFlagSet("suite", flag.ExitOnError)
	seed := fs.Uint64("seed", defaultSeed, "deterministic seed applied to every scenario")
	verbose := fs.Bool("v", false, "print each scenario's full verdict report")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
		return 2
	}
	files, err := filepath.Glob(filepath.Join(fs.Arg(0), "*.scn"))
	if err != nil || len(files) == 0 {
		fmt.Fprintf(os.Stderr, "edechaos: no *.scn files in %s\n", fs.Arg(0))
		return 2
	}
	sort.Strings(files)
	fmt.Printf("effective seed: %d\n\n", *seed)

	type row struct {
		name, driver string
		verdict      scenario.Verdict
		passed, tot  int
		failed       []string
	}
	var rows []row
	exit := 0
	for _, f := range files {
		sc, err := scenario.ParseFile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edechaos: %v\n", err)
			return 2
		}
		res, err := scenario.Run(context.Background(), sc, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edechaos: %s: %v\n", sc.Name, err)
			return 2
		}
		if *verbose {
			fmt.Print(res.Report())
			fmt.Println()
		}
		r := row{
			name: sc.Name, driver: sc.Driver, verdict: res.Verdict,
			passed: res.Total() - res.Failed(), tot: res.Total(),
		}
		if res.Verdict == scenario.VerdictFail {
			exit = 1
			r.failed = res.FailedChecks()
		}
		rows = append(rows, r)
	}

	fmt.Printf("%-36s %-12s %-7s %s\n", "SCENARIO", "DRIVER", "VERDICT", "CHECKS")
	for _, r := range rows {
		fmt.Printf("%-36s %-12s %-7s %d/%d\n", r.name, r.driver, r.verdict, r.passed, r.tot)
		for _, fc := range r.failed {
			fmt.Printf("    violated: %s\n", fc)
		}
	}
	return exit
}
