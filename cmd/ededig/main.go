// Command ededig is a dig-like DNS client that understands RFC 8914: it
// sends an EDNS query with DO set, prints the response with its round-trip
// time, decodes every Extended DNS Error option (info-code, registry name,
// category, and EXTRA-TEXT) against the registry, and runs the
// troubleshooting engine over the result.
//
// Usage:
//
//	ededig -server 127.0.0.1:5353 rrsig-exp-all.extended-dns-errors.com
//	ededig -server 127.0.0.1:5353 -type AAAA valid.extended-dns-errors.com
//
// Besides UDP it speaks every front-door transport edeserver exposes:
//
//	ededig -tcp -server 127.0.0.1:5353 rrsig-exp-all.extended-dns-errors.com
//	ededig -tls -insecure -server 127.0.0.1:8853 rrsig-exp-all.extended-dns-errors.com
//	ededig -doh https://127.0.0.1:8443/dns-query -insecure -doh-post valid.extended-dns-errors.com
//	ededig -cd rrsig-exp-all.extended-dns-errors.com   # bogus data with EDEs instead of SERVFAIL
//
// With -trace the query skips the wire entirely: the built-in testbed is
// constructed in-process, a validating resolver (pick one with -profile)
// resolves the name with tracing enabled, and the full resolution trace is
// rendered — every zone cut of the delegation walk, cache decisions,
// per-server transport attempts with RTT and retry reasons, DNSSEC
// validation verdicts, and the exact point where each EDE attached:
//
//	ededig -trace ds-bogus-digest-value.extended-dns-errors.com
//	ededig -trace -profile google rrsig-exp-all.extended-dns-errors.com
package main

import (
	"context"
	"crypto/tls"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/extended-dns-errors/edelab/internal/authserver"
	"github.com/extended-dns-errors/edelab/internal/dnswire"
	"github.com/extended-dns-errors/edelab/internal/ede"
	"github.com/extended-dns-errors/edelab/internal/netsim"
	"github.com/extended-dns-errors/edelab/internal/resolver"
	"github.com/extended-dns-errors/edelab/internal/telemetry"
	"github.com/extended-dns-errors/edelab/internal/testbed"
	"github.com/extended-dns-errors/edelab/internal/transport"
)

func main() {
	server := flag.String("server", "127.0.0.1:5353", "DNS server address")
	qtypeName := flag.String("type", "A", "query type (A, AAAA, NS, SOA, TXT, DS, DNSKEY, NSEC3PARAM)")
	timeout := flag.Duration("timeout", 3*time.Second, "query timeout")
	noDO := flag.Bool("cd-only", false, "clear the DO bit")
	cd := flag.Bool("cd", false, "set the CD (checking disabled) bit: receive bogus data with its EDE diagnostics instead of SERVFAIL")
	useTCP := flag.Bool("tcp", false, "query over TCP (RFC 7766 two-byte framing)")
	useTLS := flag.Bool("tls", false, "query over DoT (RFC 7858); -server is host:port of the TLS listener")
	dohURL := flag.String("doh", "", "query over DoH (RFC 8484): endpoint URL like https://127.0.0.1:8443/dns-query (overrides -server)")
	dohPost := flag.Bool("doh-post", false, "with -doh, use the POST application/dns-message form instead of GET ?dns=")
	insecure := flag.Bool("insecure", false, "skip TLS certificate verification for -tls/-doh (edeserver's default cert is self-signed)")
	traceMode := flag.Bool("trace", false, "resolve in-process against the built-in testbed and render the resolution trace (ignores -server)")
	profileName := flag.String("profile", "cloudflare", "vendor profile for -trace (cloudflare, google, quad9, ...)")
	chaosSpec := flag.String("chaos", "", "with -trace, inject a fault profile (e.g. \"loss=0.3,lat=20ms\") into every testbed path")
	chaosSeed := flag.Uint64("chaos-seed", 20230515, "with -chaos, seed for the deterministic fault streams")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ededig [flags] <name>")
		flag.Usage()
		os.Exit(2)
	}
	name, err := dnswire.NewName(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ededig: bad name: %v\n", err)
		os.Exit(2)
	}
	qtype, ok := parseType(*qtypeName)
	if !ok {
		fmt.Fprintf(os.Stderr, "ededig: unknown type %q\n", *qtypeName)
		os.Exit(2)
	}

	if *traceMode {
		runTrace(name, qtype, *profileName, *chaosSpec, *chaosSeed)
		return
	}
	if *chaosSpec != "" {
		fmt.Fprintln(os.Stderr, "ededig: -chaos requires -trace (faults are injected into the in-process testbed)")
		os.Exit(2)
	}

	q := dnswire.NewQuery(uint16(time.Now().UnixNano()), name, qtype)
	if *noDO {
		q.OPT.DO = false
	}
	q.CheckingDisabled = *cd
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var tlsConf *tls.Config
	if *insecure {
		tlsConf = &tls.Config{InsecureSkipVerify: true}
	}
	var (
		resp *dnswire.Message
		via  = *server
	)
	start := time.Now()
	switch {
	case *dohURL != "":
		client := http.DefaultClient
		if tlsConf != nil {
			client = &http.Client{Transport: &http.Transport{TLSClientConfig: tlsConf}}
		}
		resp, err = transport.QueryDoH(ctx, client, *dohURL, q, *dohPost)
		via = *dohURL
	case *useTLS:
		resp, err = transport.QueryDoT(ctx, *server, tlsConf, q)
	case *useTCP:
		resp, err = transport.QueryTCP(ctx, *server, q)
	default:
		resp, err = authserver.QueryUDP(ctx, *server, q)
	}
	rtt := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ededig: query failed: %v\n", err)
		os.Exit(1)
	}

	fmt.Print(resp.String())
	fmt.Printf(";; Query time: %d msec\n", rtt.Milliseconds())
	fmt.Printf(";; SERVER: %s (%s)\n", via, transportName(*dohURL != "", *useTLS, *useTCP))
	printEDEs(resp)
	printDiagnosis(resp)
}

// transportName labels the probe for the SERVER line.
func transportName(doh, dot, tcp bool) string {
	switch {
	case doh:
		return "DoH"
	case dot:
		return "DoT"
	case tcp:
		return "TCP"
	default:
		return "UDP"
	}
}

// runTrace resolves the name against the in-process testbed with a live
// trace in the context, then renders the span tree the resolver built.
// A non-empty chaos spec installs a deterministic fault plan on every
// testbed path, seeded so the same invocation replays the same failures.
func runTrace(name dnswire.Name, qtype dnswire.Type, profileName, chaosSpec string, chaosSeed uint64) {
	tb, err := testbed.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ededig: building testbed: %v\n", err)
		os.Exit(1)
	}
	if chaosSpec != "" {
		fp, err := netsim.ParseFaultProfile(chaosSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ededig: bad -chaos spec: %v\n", err)
			os.Exit(2)
		}
		tb.Net.SetFaults(netsim.NewFaultPlan(chaosSeed, fp))
		fmt.Printf(";; chaos: %s\n", fp.String())
		fmt.Printf(";; effective seed: %d\n", chaosSeed)
	}
	res := tb.NewResolver(resolverProfile(profileName))
	ctx, tr := telemetry.StartTrace(context.Background(), fmt.Sprintf("%s %s", name, qtype))
	start := time.Now()
	result := res.Resolve(ctx, name, qtype)
	rtt := time.Since(start)
	tr.Root().End()

	fmt.Print(result.Msg.String())
	fmt.Printf(";; Query time: %d msec (in-process resolution, %s profile)\n",
		rtt.Milliseconds(), res.Profile.Name)
	printEDEs(result.Msg)
	printDiagnosis(result.Msg)
	fmt.Println(";; RESOLUTION TRACE:")
	fmt.Print(tr.Render())
}

// printEDEs decodes every EDE option in resp against the IANA registry.
func printEDEs(resp *dnswire.Message) {
	edes := resp.EDEs()
	if len(edes) == 0 {
		fmt.Println(";; no Extended DNS Errors")
		return
	}
	fmt.Println(";; EXTENDED DNS ERRORS:")
	for _, e := range edes {
		info, _ := ede.Lookup(ede.Code(e.InfoCode))
		line := fmt.Sprintf(";;   %d (%s) [%s]", e.InfoCode, ede.Code(e.InfoCode).Name(), info.Category)
		if e.ExtraText != "" {
			line += fmt.Sprintf(": %q", e.ExtraText)
		}
		fmt.Println(line)
	}
}

// printDiagnosis runs the troubleshooting engine over the response.
func printDiagnosis(resp *dnswire.Message) {
	d := ede.Diagnose(ede.Observe(resp))
	fmt.Println(";; DIAGNOSIS:")
	fmt.Printf(";;   severity:    %s\n", d.Severity)
	fmt.Printf(";;   root cause:  %s\n", d.RootCause)
	fmt.Printf(";;   party:       %s\n", d.Party)
	fmt.Printf(";;   remediation: %s\n", d.Remediation)
}

// resolverProfile maps a CLI name to a vendor profile (Cloudflare default).
func resolverProfile(name string) *resolver.Profile {
	for _, p := range resolver.AllProfiles() {
		if strings.Contains(strings.ToLower(p.Name), strings.ToLower(name)) {
			return p
		}
	}
	return resolver.ProfileCloudflare()
}

func parseType(s string) (dnswire.Type, bool) {
	switch strings.ToUpper(s) {
	case "A":
		return dnswire.TypeA, true
	case "AAAA":
		return dnswire.TypeAAAA, true
	case "NS":
		return dnswire.TypeNS, true
	case "SOA":
		return dnswire.TypeSOA, true
	case "CNAME":
		return dnswire.TypeCNAME, true
	case "MX":
		return dnswire.TypeMX, true
	case "TXT":
		return dnswire.TypeTXT, true
	case "DS":
		return dnswire.TypeDS, true
	case "DNSKEY":
		return dnswire.TypeDNSKEY, true
	case "NSEC":
		return dnswire.TypeNSEC, true
	case "NSEC3":
		return dnswire.TypeNSEC3, true
	case "NSEC3PARAM":
		return dnswire.TypeNSEC3PARAM, true
	}
	return 0, false
}
