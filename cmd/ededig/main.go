// Command ededig is a dig-like DNS client that understands RFC 8914: it
// sends an EDNS query with DO set, prints the response, decodes every
// Extended DNS Error option against the registry, and runs the
// troubleshooting engine over the result.
//
// Usage:
//
//	ededig -server 127.0.0.1:5353 rrsig-exp-all.extended-dns-errors.com
//	ededig -server 127.0.0.1:5353 -type AAAA valid.extended-dns-errors.com
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/extended-dns-errors/edelab/internal/authserver"
	"github.com/extended-dns-errors/edelab/internal/dnswire"
	"github.com/extended-dns-errors/edelab/internal/ede"
)

func main() {
	server := flag.String("server", "127.0.0.1:5353", "DNS server address")
	qtypeName := flag.String("type", "A", "query type (A, AAAA, NS, SOA, TXT, DS, DNSKEY, NSEC3PARAM)")
	timeout := flag.Duration("timeout", 3*time.Second, "query timeout")
	noDO := flag.Bool("cd-only", false, "clear the DO bit")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ededig [flags] <name>")
		flag.Usage()
		os.Exit(2)
	}
	name, err := dnswire.NewName(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ededig: bad name: %v\n", err)
		os.Exit(2)
	}
	qtype, ok := parseType(*qtypeName)
	if !ok {
		fmt.Fprintf(os.Stderr, "ededig: unknown type %q\n", *qtypeName)
		os.Exit(2)
	}

	q := dnswire.NewQuery(uint16(time.Now().UnixNano()), name, qtype)
	if *noDO {
		q.OPT.DO = false
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	resp, err := authserver.QueryUDP(ctx, *server, q)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ededig: query failed: %v\n", err)
		os.Exit(1)
	}

	fmt.Print(resp.String())

	edes := resp.EDEs()
	if len(edes) == 0 {
		fmt.Println(";; no Extended DNS Errors")
	} else {
		fmt.Println(";; EXTENDED DNS ERRORS:")
		for _, e := range edes {
			info, _ := ede.Lookup(ede.Code(e.InfoCode))
			line := fmt.Sprintf(";;   %d (%s) [%s]", e.InfoCode, ede.Code(e.InfoCode).Name(), info.Category)
			if e.ExtraText != "" {
				line += fmt.Sprintf(": %q", e.ExtraText)
			}
			fmt.Println(line)
		}
	}

	d := ede.Diagnose(ede.Observe(resp))
	fmt.Println(";; DIAGNOSIS:")
	fmt.Printf(";;   severity:    %s\n", d.Severity)
	fmt.Printf(";;   root cause:  %s\n", d.RootCause)
	fmt.Printf(";;   party:       %s\n", d.Party)
	fmt.Printf(";;   remediation: %s\n", d.Remediation)
}

func parseType(s string) (dnswire.Type, bool) {
	switch strings.ToUpper(s) {
	case "A":
		return dnswire.TypeA, true
	case "AAAA":
		return dnswire.TypeAAAA, true
	case "NS":
		return dnswire.TypeNS, true
	case "SOA":
		return dnswire.TypeSOA, true
	case "CNAME":
		return dnswire.TypeCNAME, true
	case "MX":
		return dnswire.TypeMX, true
	case "TXT":
		return dnswire.TypeTXT, true
	case "DS":
		return dnswire.TypeDS, true
	case "DNSKEY":
		return dnswire.TypeDNSKEY, true
	case "NSEC":
		return dnswire.TypeNSEC, true
	case "NSEC3":
		return dnswire.TypeNSEC3, true
	case "NSEC3PARAM":
		return dnswire.TypeNSEC3PARAM, true
	}
	return 0, false
}
