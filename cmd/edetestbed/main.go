// Command edetestbed reproduces Section 3 of the paper: it builds the
// extended-dns-errors.com testbed (63 misconfigured subdomains, Tables 2–3),
// resolves every test case through the seven vendor profiles, and prints the
// resulting Table 4 together with the §3.3 agreement statistics.
//
// Usage:
//
//	edetestbed            # print the reproduced Table 4 + agreement stats
//	edetestbed -table 2   # print Table 2 (the subdomain groups)
//	edetestbed -table 3   # print Table 3 (per-subdomain configuration)
//	edetestbed -expected  # print the paper's Table 4 for comparison
//	edetestbed -diff      # cell-by-cell comparison against the paper
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"github.com/extended-dns-errors/edelab/internal/ede"
	"github.com/extended-dns-errors/edelab/internal/report"
	"github.com/extended-dns-errors/edelab/internal/resolver"
	"github.com/extended-dns-errors/edelab/internal/testbed"
)

func main() {
	table := flag.Int("table", 4, "which paper table to print (2, 3, or 4)")
	expected := flag.Bool("expected", false, "print the paper's Table 4 instead of measuring")
	diff := flag.Bool("diff", false, "compare the measured matrix against the paper cell by cell")
	zones := flag.String("zones", "", "dump the master file of one test zone (a Table 2 label, or 'all')")
	trace := flag.String("trace", "", "trace the resolution of one test case (a Table 2 label) under the Cloudflare profile")
	flag.Parse()

	tb, err := testbed.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "edetestbed: build: %v\n", err)
		os.Exit(1)
	}

	if *zones != "" {
		dumpZones(tb, *zones)
		return
	}
	if *trace != "" {
		traceCase(tb, *trace)
		return
	}

	switch {
	case *table == 2:
		printTable2(tb)
		return
	case *table == 3:
		printTable3(tb)
		return
	case *expected:
		fmt.Print(tb.ExpectedMatrix().Render())
		return
	}

	fmt.Fprintln(os.Stderr, "resolving 63 cases × 7 vendor profiles ...")
	got := tb.RunAll(context.Background(), resolver.AllProfiles())

	if *diff {
		printDiff(tb, got)
		return
	}
	fmt.Print(got.Render())
	fmt.Println()
	fmt.Print(report.AgreementSummary(got.Agreement()))
	fmt.Println()
	fmt.Println("Specificity (cases with at least one EDE, per system):")
	for _, s := range got.Specificity() {
		fmt.Printf("  %-18s %2d cases, %2d codes total\n", s.System, s.CasesWithEDE, s.TotalCodes)
	}
	fmt.Println()
	fmt.Println("Pairwise agreement (extension; top and bottom 3 pairs):")
	pairs := got.Pairwise()
	show := pairs
	if len(pairs) > 6 {
		show = append(append([]ede.PairAgreement(nil), pairs[:3]...), pairs[len(pairs)-3:]...)
	}
	for _, p := range show {
		fmt.Printf("  %-18s ~ %-18s %2d/%2d (%.0f%%)\n", p.A, p.B, p.Agree, p.Total, 100*p.Ratio())
	}
}

// traceCase shows a dig-+trace-style view of one case's resolution.
func traceCase(tb *testbed.Testbed, label string) {
	for _, c := range tb.Cases {
		if c.Label != label {
			continue
		}
		r := tb.NewResolver(resolver.ProfileCloudflare())
		r.Trace = true
		res := tb.RunCase(context.Background(), r, c)
		fmt.Printf("; %s — %s\n", c.Label, c.Description)
		for i, step := range res.Trace {
			fmt.Printf("%2d. %s\n", i+1, step)
		}
		fmt.Printf("=> rcode=%s ad=%t conditions=%v codes=%v\n",
			res.Msg.RCode, res.Msg.AuthenticData, res.Conditions, res.Codes())
		return
	}
	fmt.Fprintf(os.Stderr, "edetestbed: unknown case %q\n", label)
	os.Exit(2)
}

// dumpZones prints the master-file form of the requested misconfigured
// zone(s) — the artifact the paper's companion site distributes per case.
func dumpZones(tb *testbed.Testbed, which string) {
	for _, c := range tb.Cases {
		if which != "all" && c.Label != which {
			continue
		}
		z, ok := tb.ZoneFor(c.Label)
		if !ok {
			fmt.Printf("; %s: no zone (invalid-glue case, configured at the parent)\n\n", c.Label)
			continue
		}
		fmt.Printf("; case %s — %s\n%s\n", c.Label, c.Description, z.Master())
	}
}

func printTable2(tb *testbed.Testbed) {
	groups := map[int]string{
		1: "Control subdomain", 2: "DS misconfigurations",
		3: "RRSIG misconfigurations", 4: "NSEC3 misconfigurations",
		5: "DNSKEY misconfigurations", 6: "Invalid AAAA glue records",
		7: "Invalid A glue records", 8: "Other",
	}
	for g := 1; g <= 8; g++ {
		fmt.Printf("%d. %s\n", g, groups[g])
		for _, c := range tb.Cases {
			if c.Group == g {
				fmt.Printf("    %s\n", c.Label)
			}
		}
	}
}

func printTable3(tb *testbed.Testbed) {
	for _, c := range tb.Cases {
		fmt.Printf("%-26s %s\n", c.Label, c.Description)
	}
}

func printDiff(tb *testbed.Testbed, got *ede.Matrix) {
	mismatch := 0
	for _, c := range tb.Cases {
		for _, sys := range testbed.Systems {
			want := ede.Set{}
			for _, code := range c.Expected[sys] {
				want = append(want, ede.Code(code))
			}
			g := got.Results[c.Label][sys]
			if !g.Equal(want) {
				mismatch++
				fmt.Printf("MISMATCH %-26s %-16s got %-10s want %s\n", c.Label, sys, g, want)
			}
		}
	}
	total := len(tb.Cases) * len(testbed.Systems)
	fmt.Printf("%d/%d cells match the paper's Table 4\n", total-mismatch, total)
}
