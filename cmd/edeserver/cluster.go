// Cluster serving mode: -cluster N runs this process as the primary — N
// frontend replicas behind the consistent-hash router, with the control
// plane mounted on -admin — while -join URL runs it as a secondary that
// replicates the primary's serving config, verifies the zone manifest,
// serves its own front door, and announces itself so the primary routes
// its ring range here over UDP.
//
//	edeserver -cluster 1 -addr 127.0.0.1:5300 -admin 127.0.0.1:9970 &
//	edeserver -join http://127.0.0.1:9970 -replica-id r1 -addr 127.0.0.1:5301 &
//	edeserver -join http://127.0.0.1:9970 -replica-id r2 -addr 127.0.0.1:5302 &
//
// SIGTERM on a secondary runs the rolling-restart protocol: announce
// drain (the primary stops routing new queries here), keep serving for
// -drain-grace so forwarded in-flight queries finish, announce leave,
// then tear the listeners down. Restarting with the same -replica-id
// rejoins and takes the ring range back.
package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"time"

	"github.com/extended-dns-errors/edelab/internal/cluster"
	"github.com/extended-dns-errors/edelab/internal/forwarder"
	"github.com/extended-dns-errors/edelab/internal/frontend"
	"github.com/extended-dns-errors/edelab/internal/netsim"
	"github.com/extended-dns-errors/edelab/internal/resolver"
	"github.com/extended-dns-errors/edelab/internal/telemetry"
	"github.com/extended-dns-errors/edelab/internal/testbed"
)

// clusterMode bundles what the -cluster / -join runners need from main.
type clusterMode struct {
	tb         *testbed.Testbed
	conns      []net.PacketConn
	prof       *resolver.Profile
	tcfg       *resolver.TransportConfig
	fcfg       frontend.Config
	reg        *telemetry.Registry
	sampler    *telemetry.Sampler
	tlog       *telemetry.TraceLog
	startAdmin func(mounts ...telemetry.Mount)
	opts       frontDoorOpts

	replicas     int           // -cluster
	join         string        // -join
	id           string        // -replica-id
	advertise    string        // -advertise
	hotThreshold int           // -hot-broadcast
	drainGrace   time.Duration // -drain-grace
}

func runClusterMode(ctx context.Context, cm clusterMode) {
	if cm.join != "" {
		runClusterSecondary(ctx, cm)
		return
	}
	runClusterPrimary(ctx, cm)
}

// clusterManifest derives the replication-plane zone manifest from the
// testbed's logical layout. Hashing signed zone bytes would never match
// across processes — every Build() generates fresh signing keys — so the
// manifest pins what actually must agree for routing to be transparent:
// the case labels, groups, query names, and Table 4 ground truth.
func clusterManifest(tb *testbed.Testbed) []cluster.ZoneInfo {
	zs := make([]cluster.ZoneInfo, 0, len(tb.Cases)+1)
	zs = append(zs, cluster.ZoneInfo{
		Name: testbed.ParentZone.String(),
		Hash: cluster.HashZoneText(fmt.Sprintf("parent|%d cases", len(tb.Cases))),
	})
	for _, c := range tb.Cases {
		zs = append(zs, cluster.ZoneInfo{
			Name: c.Zone.String(),
			Hash: cluster.HashZoneText(fmt.Sprintf("%s|%d|%s|%v", c.Label, c.Group, c.Query, c.Expected)),
		})
	}
	return zs
}

// runClusterPrimary serves the front door through an N-replica cluster and
// mounts its REST control plane on the admin listener so -join secondaries
// can replicate state and take ring ranges.
func runClusterPrimary(ctx context.Context, cm clusterMode) {
	cl := cluster.New(cluster.Config{
		Seed:         20230515,
		Frontend:     cm.fcfg,
		HotThreshold: cm.hotThreshold,
		Manifest:     func() []cluster.ZoneInfo { return clusterManifest(cm.tb) },
	})
	for i := 0; i < cm.replicas; i++ {
		res := cm.tb.NewResolver(cm.prof)
		if cm.tcfg != nil {
			res.Transport = cm.tcfg
		}
		// The shared registry keeps one resolver's counters (registration
		// is idempotent per name); per-replica serving metrics live at
		// /api/cluster/metrics?replica=<id>.
		if i == 0 {
			res.RegisterMetrics(cm.reg)
		}
		if _, err := cl.AddLocal(fmt.Sprintf("r%d", i), forwarder.ResolverUpstream{R: res}); err != nil {
			fmt.Fprintf(os.Stderr, "edeserver: -cluster: %v\n", err)
			os.Exit(1)
		}
	}
	cl.RegisterMetrics(cm.reg)
	cm.startAdmin(telemetry.Mount{Pattern: "/api/cluster/", Handler: cl.RESTHandler()})
	fmt.Printf("cluster primary: %d local replica(s) behind the consistent-hash router; control plane at /api/cluster/\n", cm.replicas)

	if !cm.opts.disableWire {
		cm.opts.wire = cl
	}
	front := tracedHandler(cl, cm.sampler, cm.tlog)
	if err := serveFrontDoor(ctx, cm.conns, front, cm.reg, cm.opts); err != nil && ctx.Err() == nil {
		fmt.Fprintf(os.Stderr, "edeserver: %v\n", err)
		os.Exit(1)
	}
}

// runClusterSecondary replicates the primary's serving config, refuses to
// join across a zone-manifest mismatch, serves its own front door, and
// runs the drain → leave protocol on SIGTERM.
func runClusterSecondary(ctx context.Context, cm clusterMode) {
	st, err := cluster.FetchState(ctx, cm.join)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edeserver: -join %s: %v\n", cm.join, err)
		os.Exit(1)
	}
	if err := cluster.VerifyManifest(clusterManifest(cm.tb), st.Zones); err != nil {
		fmt.Fprintf(os.Stderr, "edeserver: refusing to join %s: %v\n", cm.join, err)
		os.Exit(1)
	}
	// The primary's epoch snapshot wins over local flags: every replica
	// must serve with identical cache/stale/error behaviour or routing
	// stops being transparent.
	st.Config.Apply(&cm.fcfg)

	res := cm.tb.NewResolver(cm.prof)
	if cm.tcfg != nil {
		res.Transport = cm.tcfg
	}
	res.RegisterMetrics(cm.reg)
	fe := frontend.New(forwarder.ResolverUpstream{R: res}, cm.fcfg)
	fe.RegisterMetrics(cm.reg)
	cm.startAdmin()

	dnsAddr := cm.conns[0].LocalAddr().String()
	id := cm.id
	if id == "" {
		id = "replica-" + dnsAddr
	}
	adv := cm.advertise
	if adv == "" {
		adv = dnsAddr
	}

	// The UDP socket is already bound, so the primary may route here the
	// moment the join lands; queued packets drain when serving starts.
	if _, err := cluster.Join(ctx, cm.join, id, adv); err != nil {
		fmt.Fprintf(os.Stderr, "edeserver: -join %s: %v\n", cm.join, err)
		os.Exit(1)
	}
	fmt.Printf("joined cluster at %s as %q (advertising %s, primary epoch %d)\n", cm.join, id, adv, st.Epoch)

	serveCtx, cancelServe := context.WithCancel(context.Background())
	defer cancelServe()
	go func() {
		<-ctx.Done()
		dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := cluster.AnnounceDrain(dctx, cm.join, id); err != nil {
			fmt.Fprintf(os.Stderr, "edeserver: drain announce: %v\n", err)
		}
		// Keep serving while the primary's in-flight forwards finish.
		time.Sleep(cm.drainGrace)
		if err := cluster.AnnounceLeave(dctx, cm.join, id); err != nil {
			fmt.Fprintf(os.Stderr, "edeserver: leave announce: %v\n", err)
		}
		cancelServe()
	}()

	if !cm.opts.disableWire {
		cm.opts.wire = fe
	}
	var front netsim.Handler = tracedHandler(fe, cm.sampler, cm.tlog)
	if err := serveFrontDoor(serveCtx, cm.conns, front, cm.reg, cm.opts); err != nil && serveCtx.Err() == nil {
		fmt.Fprintf(os.Stderr, "edeserver: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("replica %q drained and left the cluster\n", id)
}
