// Command edeserver serves the paper's testbed zones over a real
// multi-transport front door — UDP always, plus TCP (-tcp), DoT (-tls),
// and DoH (-doh). Point any EDE-aware client (cmd/ededig, dig +ednsopt,
// kdig +tls, curl --doh-url) at it to see the misconfigured zones on the
// wire:
//
//	edeserver -mode resolver -tcp 127.0.0.1:5353 -tls 127.0.0.1:8853 -doh 127.0.0.1:8443 &
//	ededig -tcp -server 127.0.0.1:5353 rrsig-exp-all.extended-dns-errors.com
//	ededig -tls -insecure -server 127.0.0.1:8853 rrsig-exp-all.extended-dns-errors.com
//	ededig -doh https://127.0.0.1:8443/dns-query -insecure valid.extended-dns-errors.com
//
// Without -tls-cert/-tls-key an ephemeral self-signed certificate is
// generated for the TLS listeners, so clients need -insecure (or kdig's
// equivalent). Every transport funnels into the same handler: the EDE
// codes and EXTRA-TEXT a client sees are identical over all of them.
//
// It serves the root, com, extended-dns-errors.com, and all 63 subdomain
// zones from a single socket, answering authoritatively for whichever zone
// matches the query — a consolidated stand-in for the testbed's simulated
// server fleet, useful for wire-level inspection.
//
// With -mode resolver the socket instead fronts a validating recursive
// resolver (Cloudflare profile) over the same testbed through the caching
// serving layer (internal/frontend): sharded message cache, query
// coalescing, RFC 8767 serve-stale (EDE 3/19), an error cache (EDE 13), and
// overload shedding. Clients receive the Extended DNS Errors themselves:
//
//	edeserver -addr 127.0.0.1:5353 -mode resolver -metrics &
//	ededig -server 127.0.0.1:5353 rrsig-exp-all.extended-dns-errors.com
//
// With -admin an HTTP admin plane comes up alongside the DNS socket:
//
//	edeserver -addr 127.0.0.1:5353 -mode resolver -admin 127.0.0.1:9970 -trace-sample 1 &
//	curl -s 127.0.0.1:9970/metrics      # Prometheus text exposition
//	curl -s 127.0.0.1:9970/metrics.json # same registry as JSON
//	curl -s 127.0.0.1:9970/healthz
//	curl -s '127.0.0.1:9970/api/trace?name=rrsig-exp-all'
//
// -trace-sample N records every Nth query's full resolution trace — the
// delegation walk, cache decisions, per-server transport attempts, DNSSEC
// verdicts, and where each EDE attached — into a bounded ring readable at
// /api/trace. /debug/pprof/* is also served.
//
// With -metrics the serving counters (hits, misses, stale serves, coalesced
// waits, per-EDE emissions, ...) are printed on SIGINT. This stderr dump is
// deprecated in favour of scraping the admin plane's /metrics; it remains
// for scripts that parse the exit-time summary. -no-frontend bypasses the
// serving layer and runs one full recursion per packet, the pre-frontend
// behaviour, for comparison.
package main

import (
	"context"
	"crypto/tls"
	"flag"
	"fmt"
	"net"
	"net/netip"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/extended-dns-errors/edelab/internal/dnswire"
	"github.com/extended-dns-errors/edelab/internal/forwarder"
	"github.com/extended-dns-errors/edelab/internal/frontend"
	"github.com/extended-dns-errors/edelab/internal/netsim"
	"github.com/extended-dns-errors/edelab/internal/resolver"
	"github.com/extended-dns-errors/edelab/internal/telemetry"
	"github.com/extended-dns-errors/edelab/internal/testbed"
	"github.com/extended-dns-errors/edelab/internal/transport"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5353", "UDP listen address")
	mode := flag.String("mode", "auth", "auth: serve the zones authoritatively; resolver: front a validating recursive resolver with EDE")
	profileName := flag.String("profile", "cloudflare", "vendor profile for -mode resolver")
	noFrontend := flag.Bool("no-frontend", false, "bypass the caching frontend in -mode resolver (one recursion per packet)")
	metrics := flag.Bool("metrics", false, "print frontend serving metrics on SIGINT (deprecated: scrape -admin /metrics instead)")
	admin := flag.String("admin", "", "HTTP admin plane address, e.g. 127.0.0.1:9970 (/metrics, /metrics.json, /healthz, /api/trace, /debug/pprof)")
	traceSample := flag.Uint64("trace-sample", 0, "record every Nth query's resolution trace into the /api/trace ring (0 = off; needs -admin to read back)")
	traceRing := flag.Int("trace-ring", 256, "capacity of the sampled-trace ring buffer")
	cacheSize := flag.Int("cache-size", 1<<16, "frontend cache capacity in entries")
	maxInflight := flag.Int("max-inflight", 512, "bound on concurrent upstream recursions before load shedding")
	queryTimeout := flag.Duration("query-timeout", 5*time.Second, "per-query upstream recursion deadline")
	staleWindow := flag.Duration("stale-window", 24*time.Hour, "RFC 8767 window past expiry in which stale answers may be served")
	chaos := flag.String("chaos", "", "inject faults into the simulated testbed network, e.g. 'loss=0.2,lat=100ms' (see internal/netsim.ParseFaultProfile)")
	chaosSeed := flag.Uint64("chaos-seed", 20230515, "seed for the fault plan; replays deterministically")
	retries := flag.Int("retries", 0, "resolver attempts per authoritative server in -mode resolver (0 = single-shot)")
	retryBudget := flag.Int("retry-budget", 0, "total upstream queries per resolution step in -mode resolver (0 = unlimited)")
	tcpAddr := flag.String("tcp", "", "TCP listen address (RFC 7766 framing with pipelining; empty = disabled)")
	tlsAddr := flag.String("tls", "", "DoT listen address (RFC 7858; empty = disabled)")
	dohAddr := flag.String("doh", "", "DoH listen address serving HTTPS /dns-query (RFC 8484; empty = disabled)")
	tlsCert := flag.String("tls-cert", "", "PEM certificate chain for -tls/-doh (requires -tls-key; omitted = ephemeral self-signed)")
	tlsKey := flag.String("tls-key", "", "PEM private key for -tls/-doh")
	maxConns := flag.Int("max-conns", transport.DefaultMaxConns, "per-listener bound on concurrent stream connections before shedding with EDE 23")
	idleTimeout := flag.Duration("idle-timeout", transport.DefaultIdleTimeout, "stream connection idle timeout")
	reuseport := flag.Int("reuseport", 1, "number of SO_REUSEPORT UDP sockets sharing -addr, one read loop each (linux only for >1)")
	udpWorkers := flag.Int("udp-workers", transport.DefaultUDPWorkers, "goroutines per UDP read loop draining slow-path queries")
	noWireCache := flag.Bool("no-wire-cache", false, "disable the pre-packed wire response cache (every query builds its response from scratch)")
	tcpKeepalive := flag.Duration("tcp-keepalive", 0, "edns-tcp-keepalive idle timeout advertised on TCP/DoT responses (RFC 7828; 0 = not advertised)")
	clusterN := flag.Int("cluster", 0, "run N frontend replicas behind a consistent-hash query router (implies -mode resolver; mounts /api/cluster/ on -admin for -join peers)")
	joinURL := flag.String("join", "", "join an existing cluster as a secondary replica, e.g. http://127.0.0.1:9970 (the primary's -admin base URL)")
	replicaID := flag.String("replica-id", "", "replica identity announced to the cluster with -join (default: derived from the DNS listen address)")
	advertiseAddr := flag.String("advertise", "", "DNS address the primary should forward this replica's ring range to with -join (default: the bound -addr)")
	hotBroadcast := flag.Int("hot-broadcast", 0, "owner cache hits after which an entry's pre-packed wire image is broadcast to every replica (0 = library default)")
	drainGrace := flag.Duration("drain-grace", 500*time.Millisecond, "how long a -join replica keeps serving between announcing drain and leaving on SIGTERM")
	flag.Parse()
	if *clusterN > 0 || *joinURL != "" {
		*mode = "resolver"
	}
	if *clusterN > 0 && *joinURL != "" {
		fmt.Fprintln(os.Stderr, "edeserver: -cluster (primary) and -join (secondary) are mutually exclusive")
		os.Exit(2)
	}

	tb, err := testbed.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "edeserver: %v\n", err)
		os.Exit(1)
	}
	if *chaos != "" {
		fp, err := netsim.ParseFaultProfile(*chaos)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edeserver: -chaos: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("injecting faults: %s (seed %d)\n", fp, *chaosSeed)
		tb.Net.SetFaults(netsim.NewFaultPlan(*chaosSeed, fp))
	}

	conns, err := transport.ListenUDPReusePort(context.Background(), *addr, *reuseport)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edeserver: %v\n", err)
		os.Exit(1)
	}
	conn := conns[0]
	if len(conns) > 1 {
		fmt.Printf("SO_REUSEPORT: %d UDP sockets on %s\n", len(conns), conn.LocalAddr())
	}
	fmt.Printf("serving the extended-dns-errors.com testbed on %s (mode %s)\n", conn.LocalAddr(), *mode)
	fmt.Printf("zones: root, com, %s and %d test subdomains\n", testbed.ParentZone, len(tb.Cases))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := telemetry.NewRegistry()
	tb.Net.RegisterMetrics(reg)
	var tlog *telemetry.TraceLog
	if *traceSample > 0 {
		tlog = telemetry.NewTraceLog(*traceRing)
	}
	sampler := telemetry.NewSampler(*traceSample)
	startAdmin := func(mounts ...telemetry.Mount) {
		if *admin == "" {
			return
		}
		h := telemetry.AdminHandler(reg, tlog, func() map[string]any {
			return map[string]any{"mode": *mode, "dns_addr": conn.LocalAddr().String()}
		}, mounts...)
		adminAddr, err := telemetry.ServeAdmin(ctx, *admin, h)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edeserver: -admin: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("admin plane on http://%s (/metrics /metrics.json /healthz /api/trace /debug/pprof)\n", adminAddr)
	}

	if *mode == "resolver" {
		prof := resolverProfile(*profileName)
		var tcfg *resolver.TransportConfig
		if *retries > 0 || *retryBudget > 0 {
			tcfg = &resolver.TransportConfig{
				Retries:     *retries,
				RetryBudget: *retryBudget,
				Backoff:     50 * time.Millisecond,
			}
		}
		fdOpts := frontDoorOpts{
			tcp: *tcpAddr, dot: *tlsAddr, doh: *dohAddr,
			certFile: *tlsCert, keyFile: *tlsKey,
			maxConns: *maxConns, idleTimeout: *idleTimeout,
			udpWorkers: *udpWorkers, disableWire: *noWireCache,
			tcpKeepalive: *tcpKeepalive,
		}
		fcfg := frontend.Config{
			Capacity:     *cacheSize,
			MaxInflight:  *maxInflight,
			QueryTimeout: *queryTimeout,
			StaleWindow:  *staleWindow,
		}
		if *clusterN > 0 || *joinURL != "" {
			runClusterMode(ctx, clusterMode{
				tb: tb, conns: conns, prof: prof, tcfg: tcfg,
				fcfg: fcfg, reg: reg, sampler: sampler, tlog: tlog,
				startAdmin: startAdmin, opts: fdOpts,
				replicas: *clusterN, join: *joinURL,
				id: *replicaID, advertise: *advertiseAddr,
				hotThreshold: *hotBroadcast, drainGrace: *drainGrace,
			})
			return
		}
		startAdmin()
		res := tb.NewResolver(prof)
		if tcfg != nil {
			res.Transport = tcfg
		}
		res.RegisterMetrics(reg)
		var front netsim.Handler
		var fe *frontend.Frontend
		if *noFrontend {
			front = directHandler(res)
		} else {
			fe = frontend.New(forwarder.ResolverUpstream{R: res}, fcfg)
			fe.RegisterMetrics(reg)
			front = fe
		}
		front = tracedHandler(front, sampler, tlog)
		// The wire fast path is handed over explicitly: tracedHandler may
		// wrap the frontend in a plain HandlerFunc (hiding its WireServer
		// implementation from NewServer's auto-detect), and without tracing
		// it returns the frontend bare (which auto-detect would find even
		// under -no-wire-cache) — so both wire and disableWire are always
		// set here. Wire hits bypass tracing: they never start a
		// resolution, so there is no trace.
		var wire transport.WireServer
		if fe != nil && !*noWireCache {
			wire = fe
		}
		fdOpts.wire = wire
		if err := serveFrontDoor(ctx, conns, front, reg, fdOpts); err != nil && ctx.Err() == nil {
			fmt.Fprintf(os.Stderr, "edeserver: %v\n", err)
			os.Exit(1)
		}
		if *metrics && fe != nil {
			fmt.Printf("\nfrontend metrics (cache entries: %d)\n%s", fe.CacheLen(), fe.Metrics().Snapshot())
		}
		return
	}

	startAdmin()

	// Front the whole simulated network through one socket: route each
	// query to the simulated endpoint that would be authoritative for it.
	front := netsim.HandlerFunc(func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		if len(q.Question) == 0 {
			r := q.Reply()
			r.RCode = dnswire.RCodeFormErr
			return r, nil
		}
		// Walk the simulated resolution from the root to find the deepest
		// server that answers authoritatively (or with a referral we can
		// follow).
		servers := tb.Roots
		for depth := 0; depth < 10; depth++ {
			resp, next, done := step(ctx, tb, servers, q)
			if done {
				return resp, nil
			}
			servers = next
		}
		r := q.Reply()
		r.RCode = dnswire.RCodeServFail
		return r, nil
	})

	if err := serveFrontDoor(ctx, conns, tracedHandler(front, sampler, tlog), reg, frontDoorOpts{
		tcp: *tcpAddr, dot: *tlsAddr, doh: *dohAddr,
		certFile: *tlsCert, keyFile: *tlsKey,
		maxConns: *maxConns, idleTimeout: *idleTimeout,
		udpWorkers: *udpWorkers, tcpKeepalive: *tcpKeepalive,
	}); err != nil && ctx.Err() == nil {
		fmt.Fprintf(os.Stderr, "edeserver: %v\n", err)
		os.Exit(1)
	}
}

// frontDoorOpts carries the listener flags into serveFrontDoor.
type frontDoorOpts struct {
	tcp, dot, doh     string
	certFile, keyFile string
	maxConns          int
	idleTimeout       time.Duration
	udpWorkers        int
	wire              transport.WireServer
	disableWire       bool
	tcpKeepalive      time.Duration
}

// serveFrontDoor runs the transport front door: one ServeUDP read loop per
// UDP socket (several under -reuseport), plus whichever stream/HTTP
// listeners the flags enabled, all funnelled into front. It blocks until
// ctx is cancelled (SIGINT/SIGTERM) — at which point every listener drains
// its in-flight queries — or a listener fails.
func serveFrontDoor(ctx context.Context, conns []net.PacketConn, front netsim.Handler, reg *telemetry.Registry, opts frontDoorOpts) error {
	srv := transport.NewServer(transport.Config{
		Handler:      front,
		MaxConns:     opts.maxConns,
		IdleTimeout:  opts.idleTimeout,
		UDPWorkers:   opts.udpWorkers,
		Wire:         opts.wire,
		DisableWire:  opts.disableWire,
		TCPKeepalive: opts.tcpKeepalive,
		Registry:     reg,
	})

	var tlsConf *tls.Config
	if opts.dot != "" || opts.doh != "" {
		cert, err := frontDoorCert(opts)
		if err != nil {
			return err
		}
		tlsConf = &tls.Config{Certificates: []tls.Certificate{cert}}
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errc := make(chan error, len(conns)+3)
	n := 0
	for _, conn := range conns {
		conn := conn
		n++
		go func() { errc <- srv.ServeUDP(ctx, conn) }()
	}

	if opts.tcp != "" {
		l, err := net.Listen("tcp", opts.tcp)
		if err != nil {
			return fmt.Errorf("-tcp: %w", err)
		}
		fmt.Printf("TCP listener on %s\n", l.Addr())
		n++
		go func() { errc <- srv.ServeTCP(ctx, l) }()
	}
	if opts.dot != "" {
		l, err := net.Listen("tcp", opts.dot)
		if err != nil {
			return fmt.Errorf("-tls: %w", err)
		}
		fmt.Printf("DoT listener on %s\n", l.Addr())
		n++
		go func() { errc <- srv.ServeDoT(ctx, l, tlsConf.Clone()) }()
	}
	if opts.doh != "" {
		l, err := net.Listen("tcp", opts.doh)
		if err != nil {
			return fmt.Errorf("-doh: %w", err)
		}
		fmt.Printf("DoH endpoint on https://%s%s\n", l.Addr(), transport.DoHPath)
		n++
		go func() { errc <- srv.ServeDoH(ctx, l, tlsConf.Clone()) }()
	}

	// First hard failure tears the rest down; a clean ctx cancellation
	// waits for every listener to finish draining.
	var firstErr error
	for i := 0; i < n; i++ {
		if err := <-errc; err != nil && ctx.Err() == nil && firstErr == nil {
			firstErr = err
			cancel()
		}
	}
	return firstErr
}

// frontDoorCert loads the -tls-cert/-tls-key pair, or mints an ephemeral
// self-signed certificate for loopback lab use when none was given.
func frontDoorCert(opts frontDoorOpts) (tls.Certificate, error) {
	if opts.certFile != "" || opts.keyFile != "" {
		if opts.certFile == "" || opts.keyFile == "" {
			return tls.Certificate{}, fmt.Errorf("-tls-cert and -tls-key must be given together")
		}
		cert, err := tls.LoadX509KeyPair(opts.certFile, opts.keyFile)
		if err != nil {
			return tls.Certificate{}, fmt.Errorf("loading TLS key pair: %w", err)
		}
		return cert, nil
	}
	fmt.Println("no -tls-cert/-tls-key given: using an ephemeral self-signed certificate (clients need -insecure / kdig +tls-no-check)")
	return transport.SelfSignedCert("localhost", "127.0.0.1", "::1")
}

// tracedHandler samples queries into per-resolution traces. Every Nth query
// (per -trace-sample) gets a live trace threaded through its context — the
// resolver and validator hang their span tree off it — and the finished
// trace lands in the ring served at /api/trace. With sampling off the
// handler is returned untouched, so the nil-span fast path stays in force.
func tracedHandler(h netsim.Handler, sampler *telemetry.Sampler, tlog *telemetry.TraceLog) netsim.Handler {
	if tlog == nil {
		return h
	}
	return netsim.HandlerFunc(func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		if len(q.Question) == 0 || !sampler.Sample() {
			return h.HandleDNS(ctx, q)
		}
		ctx, tr := telemetry.StartTrace(ctx, fmt.Sprintf("%s %s", q.Question[0].Name, q.Question[0].Type))
		resp, err := h.HandleDNS(ctx, q)
		tr.Root().End()
		tlog.Add(tr)
		return resp, err
	})
}

// directHandler runs one full recursion per query, bypassing the serving
// layer. The resolver's message may be shared with its internal cache, so
// the response is re-headed into a fresh reply for this client rather than
// mutating the resolver's copy in place.
func directHandler(res *resolver.Resolver) netsim.Handler {
	return netsim.HandlerFunc(func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		if len(q.Question) == 0 {
			r := q.Reply()
			r.RCode = dnswire.RCodeFormErr
			return r, nil
		}
		msg := res.Resolve(ctx, q.Question[0].Name, q.Question[0].Type).Msg
		out := q.Reply()
		out.RCode = msg.RCode
		out.RecursionAvailable = true
		out.AuthenticData = msg.AuthenticData
		out.Answer = append([]dnswire.RR(nil), msg.Answer...)
		out.Authority = append([]dnswire.RR(nil), msg.Authority...)
		if q.OPT != nil {
			for _, e := range msg.EDEs() {
				out.AddEDE(e.InfoCode, e.ExtraText)
			}
		}
		return out, nil
	})
}

// resolverProfile maps a CLI name to a vendor profile (Cloudflare default).
func resolverProfile(name string) *resolver.Profile {
	for _, p := range resolver.AllProfiles() {
		if strings.Contains(strings.ToLower(p.Name), strings.ToLower(name)) {
			return p
		}
	}
	return resolver.ProfileCloudflare()
}

// step queries the candidate servers; a referral yields the next server
// set, anything else is final.
func step(ctx context.Context, tb *testbed.Testbed, servers []netip.Addr, q *dnswire.Message) (*dnswire.Message, []netip.Addr, bool) {
	for _, srv := range servers {
		resp, err := tb.Net.Query(ctx, srv, q)
		if err != nil {
			continue
		}
		if len(resp.Answer) == 0 && resp.RCode == dnswire.RCodeNoError {
			var next []netip.Addr
			for _, rr := range resp.Additional {
				switch d := rr.Data.(type) {
				case dnswire.A:
					next = append(next, d.Addr)
				case dnswire.AAAA:
					next = append(next, d.Addr)
				}
			}
			hasNS := false
			for _, rr := range resp.Authority {
				if rr.Type() == dnswire.TypeNS {
					hasNS = true
				}
			}
			if hasNS && len(next) > 0 {
				return nil, next, false
			}
		}
		return resp, nil, true
	}
	r := q.Reply()
	r.RCode = dnswire.RCodeServFail
	return r, nil, true
}
