// Command edeserver serves the paper's testbed zones over real UDP. Point
// any EDE-aware client (cmd/ededig, dig +ednsopt, kdig) at it to see the
// misconfigured zones on the wire.
//
// It serves the root, com, extended-dns-errors.com, and all 63 subdomain
// zones from a single socket, answering authoritatively for whichever zone
// matches the query — a consolidated stand-in for the testbed's simulated
// server fleet, useful for wire-level inspection.
//
// With -mode resolver the socket instead fronts a validating recursive
// resolver (Cloudflare profile) over the same testbed, so clients receive
// the Extended DNS Errors themselves:
//
//	edeserver -addr 127.0.0.1:5353 -mode resolver &
//	ededig -server 127.0.0.1:5353 rrsig-exp-all.extended-dns-errors.com
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/netip"
	"os"
	"os/signal"
	"strings"

	"github.com/extended-dns-errors/edelab/internal/authserver"
	"github.com/extended-dns-errors/edelab/internal/dnswire"
	"github.com/extended-dns-errors/edelab/internal/netsim"
	"github.com/extended-dns-errors/edelab/internal/resolver"
	"github.com/extended-dns-errors/edelab/internal/testbed"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5353", "UDP listen address")
	mode := flag.String("mode", "auth", "auth: serve the zones authoritatively; resolver: front a validating recursive resolver with EDE")
	profileName := flag.String("profile", "cloudflare", "vendor profile for -mode resolver")
	flag.Parse()

	tb, err := testbed.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "edeserver: %v\n", err)
		os.Exit(1)
	}

	conn, err := net.ListenPacket("udp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edeserver: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("serving the extended-dns-errors.com testbed on %s (mode %s)\n", conn.LocalAddr(), *mode)
	fmt.Printf("zones: root, com, %s and %d test subdomains\n", testbed.ParentZone, len(tb.Cases))

	if *mode == "resolver" {
		prof := resolverProfile(*profileName)
		res := tb.NewResolver(prof)
		front := netsim.HandlerFunc(func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
			if len(q.Question) == 0 {
				r := q.Reply()
				r.RCode = dnswire.RCodeFormErr
				return r, nil
			}
			out := res.Resolve(ctx, q.Question[0].Name, q.Question[0].Type).Msg
			out.ID = q.ID
			return out, nil
		})
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		if err := authserver.ServeUDP(ctx, conn, front); err != nil && ctx.Err() == nil {
			fmt.Fprintf(os.Stderr, "edeserver: %v\n", err)
			os.Exit(1)
		}
		return
	}

	// Front the whole simulated network through one socket: route each
	// query to the simulated endpoint that would be authoritative for it.
	front := netsim.HandlerFunc(func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		if len(q.Question) == 0 {
			r := q.Reply()
			r.RCode = dnswire.RCodeFormErr
			return r, nil
		}
		// Walk the simulated resolution from the root to find the deepest
		// server that answers authoritatively (or with a referral we can
		// follow).
		servers := tb.Roots
		for depth := 0; depth < 10; depth++ {
			resp, next, done := step(ctx, tb, servers, q)
			if done {
				return resp, nil
			}
			servers = next
		}
		r := q.Reply()
		r.RCode = dnswire.RCodeServFail
		return r, nil
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := authserver.ServeUDP(ctx, conn, front); err != nil && ctx.Err() == nil {
		fmt.Fprintf(os.Stderr, "edeserver: %v\n", err)
		os.Exit(1)
	}
}

// resolverProfile maps a CLI name to a vendor profile (Cloudflare default).
func resolverProfile(name string) *resolver.Profile {
	for _, p := range resolver.AllProfiles() {
		if strings.Contains(strings.ToLower(p.Name), strings.ToLower(name)) {
			return p
		}
	}
	return resolver.ProfileCloudflare()
}

// step queries the candidate servers; a referral yields the next server
// set, anything else is final.
func step(ctx context.Context, tb *testbed.Testbed, servers []netip.Addr, q *dnswire.Message) (*dnswire.Message, []netip.Addr, bool) {
	for _, srv := range servers {
		resp, err := tb.Net.Query(ctx, srv, q)
		if err != nil {
			continue
		}
		if len(resp.Answer) == 0 && resp.RCode == dnswire.RCodeNoError {
			var next []netip.Addr
			for _, rr := range resp.Additional {
				switch d := rr.Data.(type) {
				case dnswire.A:
					next = append(next, d.Addr)
				case dnswire.AAAA:
					next = append(next, d.Addr)
				}
			}
			hasNS := false
			for _, rr := range resp.Authority {
				if rr.Type() == dnswire.TypeNS {
					hasNS = true
				}
			}
			if hasNS && len(next) > 0 {
				return nil, next, false
			}
		}
		return resp, nil, true
	}
	r := q.Reply()
	r.RCode = dnswire.RCodeServFail
	return r, nil, true
}
