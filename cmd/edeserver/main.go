// Command edeserver serves the paper's testbed zones over real UDP. Point
// any EDE-aware client (cmd/ededig, dig +ednsopt, kdig) at it to see the
// misconfigured zones on the wire.
//
// It serves the root, com, extended-dns-errors.com, and all 63 subdomain
// zones from a single socket, answering authoritatively for whichever zone
// matches the query — a consolidated stand-in for the testbed's simulated
// server fleet, useful for wire-level inspection.
//
// With -mode resolver the socket instead fronts a validating recursive
// resolver (Cloudflare profile) over the same testbed through the caching
// serving layer (internal/frontend): sharded message cache, query
// coalescing, RFC 8767 serve-stale (EDE 3/19), an error cache (EDE 13), and
// overload shedding. Clients receive the Extended DNS Errors themselves:
//
//	edeserver -addr 127.0.0.1:5353 -mode resolver -metrics &
//	ededig -server 127.0.0.1:5353 rrsig-exp-all.extended-dns-errors.com
//
// With -metrics the serving counters (hits, misses, stale serves, coalesced
// waits, per-EDE emissions, ...) are printed on SIGINT. -no-frontend
// bypasses the serving layer and runs one full recursion per packet, the
// pre-frontend behaviour, for comparison.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/netip"
	"os"
	"os/signal"
	"strings"
	"time"

	"github.com/extended-dns-errors/edelab/internal/authserver"
	"github.com/extended-dns-errors/edelab/internal/dnswire"
	"github.com/extended-dns-errors/edelab/internal/forwarder"
	"github.com/extended-dns-errors/edelab/internal/frontend"
	"github.com/extended-dns-errors/edelab/internal/netsim"
	"github.com/extended-dns-errors/edelab/internal/resolver"
	"github.com/extended-dns-errors/edelab/internal/testbed"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5353", "UDP listen address")
	mode := flag.String("mode", "auth", "auth: serve the zones authoritatively; resolver: front a validating recursive resolver with EDE")
	profileName := flag.String("profile", "cloudflare", "vendor profile for -mode resolver")
	noFrontend := flag.Bool("no-frontend", false, "bypass the caching frontend in -mode resolver (one recursion per packet)")
	metrics := flag.Bool("metrics", false, "print frontend serving metrics on SIGINT")
	cacheSize := flag.Int("cache-size", 1<<16, "frontend cache capacity in entries")
	maxInflight := flag.Int("max-inflight", 512, "bound on concurrent upstream recursions before load shedding")
	queryTimeout := flag.Duration("query-timeout", 5*time.Second, "per-query upstream recursion deadline")
	staleWindow := flag.Duration("stale-window", 24*time.Hour, "RFC 8767 window past expiry in which stale answers may be served")
	chaos := flag.String("chaos", "", "inject faults into the simulated testbed network, e.g. 'loss=0.2,lat=100ms' (see internal/netsim.ParseFaultProfile)")
	chaosSeed := flag.Uint64("chaos-seed", 20230515, "seed for the fault plan; replays deterministically")
	retries := flag.Int("retries", 0, "resolver attempts per authoritative server in -mode resolver (0 = single-shot)")
	retryBudget := flag.Int("retry-budget", 0, "total upstream queries per resolution step in -mode resolver (0 = unlimited)")
	flag.Parse()

	tb, err := testbed.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "edeserver: %v\n", err)
		os.Exit(1)
	}
	if *chaos != "" {
		fp, err := netsim.ParseFaultProfile(*chaos)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edeserver: -chaos: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("injecting faults: %s (seed %d)\n", fp, *chaosSeed)
		tb.Net.SetFaults(netsim.NewFaultPlan(*chaosSeed, fp))
	}

	conn, err := net.ListenPacket("udp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edeserver: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("serving the extended-dns-errors.com testbed on %s (mode %s)\n", conn.LocalAddr(), *mode)
	fmt.Printf("zones: root, com, %s and %d test subdomains\n", testbed.ParentZone, len(tb.Cases))

	if *mode == "resolver" {
		prof := resolverProfile(*profileName)
		res := tb.NewResolver(prof)
		if *retries > 0 || *retryBudget > 0 {
			res.Transport = &resolver.TransportConfig{
				Retries:     *retries,
				RetryBudget: *retryBudget,
				Backoff:     50 * time.Millisecond,
			}
		}
		var front netsim.Handler
		var fe *frontend.Frontend
		if *noFrontend {
			front = directHandler(res)
		} else {
			fe = frontend.New(forwarder.ResolverUpstream{R: res}, frontend.Config{
				Capacity:     *cacheSize,
				MaxInflight:  *maxInflight,
				QueryTimeout: *queryTimeout,
				StaleWindow:  *staleWindow,
			})
			front = fe
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		if err := authserver.ServeUDP(ctx, conn, front); err != nil && ctx.Err() == nil {
			fmt.Fprintf(os.Stderr, "edeserver: %v\n", err)
			os.Exit(1)
		}
		if *metrics && fe != nil {
			fmt.Printf("\nfrontend metrics (cache entries: %d)\n%s", fe.CacheLen(), fe.Metrics().Snapshot())
		}
		return
	}

	// Front the whole simulated network through one socket: route each
	// query to the simulated endpoint that would be authoritative for it.
	front := netsim.HandlerFunc(func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		if len(q.Question) == 0 {
			r := q.Reply()
			r.RCode = dnswire.RCodeFormErr
			return r, nil
		}
		// Walk the simulated resolution from the root to find the deepest
		// server that answers authoritatively (or with a referral we can
		// follow).
		servers := tb.Roots
		for depth := 0; depth < 10; depth++ {
			resp, next, done := step(ctx, tb, servers, q)
			if done {
				return resp, nil
			}
			servers = next
		}
		r := q.Reply()
		r.RCode = dnswire.RCodeServFail
		return r, nil
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := authserver.ServeUDP(ctx, conn, front); err != nil && ctx.Err() == nil {
		fmt.Fprintf(os.Stderr, "edeserver: %v\n", err)
		os.Exit(1)
	}
}

// directHandler runs one full recursion per query, bypassing the serving
// layer. The resolver's message may be shared with its internal cache, so
// the response is re-headed into a fresh reply for this client rather than
// mutating the resolver's copy in place.
func directHandler(res *resolver.Resolver) netsim.Handler {
	return netsim.HandlerFunc(func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		if len(q.Question) == 0 {
			r := q.Reply()
			r.RCode = dnswire.RCodeFormErr
			return r, nil
		}
		msg := res.Resolve(ctx, q.Question[0].Name, q.Question[0].Type).Msg
		out := q.Reply()
		out.RCode = msg.RCode
		out.RecursionAvailable = true
		out.AuthenticData = msg.AuthenticData
		out.Answer = append([]dnswire.RR(nil), msg.Answer...)
		out.Authority = append([]dnswire.RR(nil), msg.Authority...)
		if q.OPT != nil {
			for _, e := range msg.EDEs() {
				out.AddEDE(e.InfoCode, e.ExtraText)
			}
		}
		return out, nil
	})
}

// resolverProfile maps a CLI name to a vendor profile (Cloudflare default).
func resolverProfile(name string) *resolver.Profile {
	for _, p := range resolver.AllProfiles() {
		if strings.Contains(strings.ToLower(p.Name), strings.ToLower(name)) {
			return p
		}
	}
	return resolver.ProfileCloudflare()
}

// step queries the candidate servers; a referral yields the next server
// set, anything else is final.
func step(ctx context.Context, tb *testbed.Testbed, servers []netip.Addr, q *dnswire.Message) (*dnswire.Message, []netip.Addr, bool) {
	for _, srv := range servers {
		resp, err := tb.Net.Query(ctx, srv, q)
		if err != nil {
			continue
		}
		if len(resp.Answer) == 0 && resp.RCode == dnswire.RCodeNoError {
			var next []netip.Addr
			for _, rr := range resp.Additional {
				switch d := rr.Data.(type) {
				case dnswire.A:
					next = append(next, d.Addr)
				case dnswire.AAAA:
					next = append(next, d.Addr)
				}
			}
			hasNS := false
			for _, rr := range resp.Authority {
				if rr.Type() == dnswire.TypeNS {
					hasNS = true
				}
			}
			if hasNS && len(next) > 0 {
				return nil, next, false
			}
		}
		return resp, nil, true
	}
	r := q.Reply()
	r.RCode = dnswire.RCodeServFail
	return r, nil, true
}
