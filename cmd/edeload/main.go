// Command edeload is a closed-loop DNS load generator for the edeserver
// front door: N workers issue queries over UDP or TCP, optionally paced to
// a target QPS, and report achieved throughput plus an HDR-style latency
// distribution (p50/p90/p99/p999/max).
//
// Closed loop means a worker never has more than one query outstanding:
// the offered load adapts to the server instead of queueing unboundedly,
// so the achieved-QPS number is an honest capacity measurement.
//
//	edeserver -mode resolver -addr 127.0.0.1:5353 &
//	edeload -server 127.0.0.1:5353 -duration 5s -concurrency 8
//	edeload -server 127.0.0.1:5353 -qps 5000 -qnames valid.extended-dns-errors.com,dnskey-none.extended-dns-errors.com
//	edeload -server 127.0.0.1:5353 -transport tcp -keepalive -json -
//
// The qname mix cycles per worker, so a 4-name mix under -concurrency 8
// keeps every name warm in the server's cache. -json writes the summary as
// JSON to a file ("-" for stdout) for scripted consumption (CI gates).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/extended-dns-errors/edelab/internal/dnswire"
	"github.com/extended-dns-errors/edelab/internal/transport"
)

func main() {
	server := flag.String("server", "127.0.0.1:5353", "DNS server to load (host:port)")
	trans := flag.String("transport", "udp", "udp or tcp")
	qps := flag.Float64("qps", 0, "target queries per second across all workers (0 = unpaced closed loop)")
	concurrency := flag.Int("concurrency", 8, "worker goroutines, one outstanding query each")
	duration := flag.Duration("duration", 5*time.Second, "measurement length, after -warmup")
	warmup := flag.Duration("warmup", 500*time.Millisecond, "load before measurement starts (fills caches, not recorded)")
	qnames := flag.String("qnames", "valid.extended-dns-errors.com", "comma-separated qname mix, cycled per worker")
	qtypeFlag := flag.String("qtype", "A", "query type for every qname")
	timeout := flag.Duration("timeout", 2*time.Second, "per-query timeout")
	keepalive := flag.Bool("keepalive", false, "request edns-tcp-keepalive on TCP (RFC 7828)")
	jsonOut := flag.String("json", "", "write the JSON summary to this file ('-' = stdout; empty = text only)")
	flag.Parse()

	mix, err := parseQnames(*qnames)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edeload: %v\n", err)
		os.Exit(2)
	}
	qtype, ok := parseQType(*qtypeFlag)
	if !ok {
		fmt.Fprintf(os.Stderr, "edeload: unknown -qtype %q\n", *qtypeFlag)
		os.Exit(2)
	}
	if *trans != "udp" && *trans != "tcp" {
		fmt.Fprintf(os.Stderr, "edeload: -transport must be udp or tcp\n")
		os.Exit(2)
	}

	r := run(runConfig{
		server: *server, transport: *trans, qps: *qps,
		concurrency: *concurrency, duration: *duration, warmup: *warmup,
		mix: mix, qtype: qtype, timeout: *timeout, keepalive: *keepalive,
	})

	fmt.Print(r)
	if *jsonOut != "" {
		enc, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "edeload: %v\n", err)
			os.Exit(1)
		}
		enc = append(enc, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(enc)
		} else if err := os.WriteFile(*jsonOut, enc, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "edeload: %v\n", err)
			os.Exit(1)
		}
	}
	if r.Responses == 0 {
		os.Exit(1)
	}
}

type runConfig struct {
	server      string
	transport   string
	qps         float64
	concurrency int
	duration    time.Duration
	warmup      time.Duration
	mix         []dnswire.Name
	qtype       dnswire.Type
	timeout     time.Duration
	keepalive   bool
}

// Result is the machine-readable summary one run produces.
type Result struct {
	Server      string  `json:"server"`
	Transport   string  `json:"transport"`
	TargetQPS   float64 `json:"target_qps"`
	Concurrency int     `json:"concurrency"`
	DurationSec float64 `json:"duration_sec"`

	Sent        uint64  `json:"sent"`
	Responses   uint64  `json:"responses"`
	Timeouts    uint64  `json:"timeouts"`
	Errors      uint64  `json:"errors"`
	ServFails   uint64  `json:"servfails"`
	WithEDE     uint64  `json:"with_ede"`
	AchievedQPS float64 `json:"achieved_qps"`

	LatencyUS LatencySummary `json:"latency_us"`
}

// LatencySummary is the latency distribution in microseconds.
type LatencySummary struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "edeload: %s via %s, %d workers", r.Server, r.Transport, r.Concurrency)
	if r.TargetQPS > 0 {
		fmt.Fprintf(&b, ", paced to %.0f qps", r.TargetQPS)
	}
	fmt.Fprintf(&b, ", %.1fs\n", r.DurationSec)
	fmt.Fprintf(&b, "  sent %d  responses %d  timeouts %d  errors %d  servfail %d  with-EDE %d\n",
		r.Sent, r.Responses, r.Timeouts, r.Errors, r.ServFails, r.WithEDE)
	fmt.Fprintf(&b, "  achieved %.0f qps\n", r.AchievedQPS)
	fmt.Fprintf(&b, "  latency p50 %.0fµs  p90 %.0fµs  p99 %.0fµs  p99.9 %.0fµs  max %.0fµs\n",
		r.LatencyUS.P50, r.LatencyUS.P90, r.LatencyUS.P99, r.LatencyUS.P999, r.LatencyUS.Max)
	return b.String()
}

// counters are the shared atomic tallies the workers feed.
type counters struct {
	sent, responses, timeouts, errs, servfails, withEDE atomic.Uint64
}

func run(cfg runConfig) Result {
	var (
		c    counters
		h    = newHist()
		wg   sync.WaitGroup
		stop atomic.Bool
	)
	measureStart := time.Now().Add(cfg.warmup)
	end := measureStart.Add(cfg.duration)

	// Pacing: each worker gets an equal share of the target rate. A worker
	// sleeps until its next slot; if the server is slower than the pace,
	// the closed loop (not a queue) absorbs the difference.
	perWorkerInterval := time.Duration(0)
	if cfg.qps > 0 {
		perWorkerInterval = time.Duration(float64(cfg.concurrency) / cfg.qps * float64(time.Second))
	}

	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker(cfg, w, &c, h, &stop, measureStart, perWorkerInterval)
		}(w)
	}
	time.Sleep(time.Until(end))
	stop.Store(true)
	wg.Wait()

	elapsed := time.Since(measureStart).Seconds()
	if elapsed <= 0 {
		elapsed = cfg.duration.Seconds()
	}
	return Result{
		Server:      cfg.server,
		Transport:   cfg.transport,
		TargetQPS:   cfg.qps,
		Concurrency: cfg.concurrency,
		DurationSec: elapsed,
		Sent:        c.sent.Load(),
		Responses:   c.responses.Load(),
		Timeouts:    c.timeouts.Load(),
		Errors:      c.errs.Load(),
		ServFails:   c.servfails.Load(),
		WithEDE:     c.withEDE.Load(),
		AchievedQPS: float64(c.responses.Load()) / elapsed,
		LatencyUS: LatencySummary{
			P50:  float64(h.quantile(0.50)) / 1e3,
			P90:  float64(h.quantile(0.90)) / 1e3,
			P99:  float64(h.quantile(0.99)) / 1e3,
			P999: float64(h.quantile(0.999)) / 1e3,
			Max:  float64(h.maxNS.Load()) / 1e3,
		},
	}
}

// worker drives one closed loop until stop flips.
func worker(cfg runConfig, w int, c *counters, h *hist, stop *atomic.Bool, measureStart time.Time, interval time.Duration) {
	exchange, closeFn, err := dialWorker(cfg)
	if err != nil {
		c.errs.Add(1)
		return
	}
	defer closeFn()

	id := uint16(w*7919 + 1)
	next := time.Now()
	for i := 0; !stop.Load(); i++ {
		if interval > 0 {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			next = next.Add(interval)
		}
		q := dnswire.NewQuery(id, cfg.mix[i%len(cfg.mix)], cfg.qtype)
		id++
		if id == 0 {
			id = 1
		}
		record := time.Now().After(measureStart)
		start := time.Now()
		resp, err := exchange(q)
		rtt := time.Since(start)
		if !record {
			continue
		}
		c.sent.Add(1)
		if err != nil {
			if isTimeout(err) {
				c.timeouts.Add(1)
			} else {
				c.errs.Add(1)
			}
			continue
		}
		c.responses.Add(1)
		h.record(rtt.Nanoseconds())
		if resp.RCode == dnswire.RCodeServFail {
			c.servfails.Add(1)
		}
		if len(resp.EDECodes()) > 0 {
			c.withEDE.Add(1)
		}
	}
}

// dialWorker opens this worker's connection and returns its exchange
// function. UDP matches responses by ID on a private socket; TCP reuses one
// framed connection via StreamClient.
func dialWorker(cfg runConfig) (func(*dnswire.Message) (*dnswire.Message, error), func(), error) {
	switch cfg.transport {
	case "tcp":
		sc := &transport.StreamClient{Addr: cfg.server, RequestKeepalive: cfg.keepalive, IdleTimeout: -1}
		exchange := func(q *dnswire.Message) (*dnswire.Message, error) {
			ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
			defer cancel()
			return sc.Query(ctx, q)
		}
		return exchange, func() { sc.Close() }, nil
	default:
		conn, err := net.Dial("udp", cfg.server)
		if err != nil {
			return nil, nil, err
		}
		buf := make([]byte, 0xFFFF)
		exchange := func(q *dnswire.Message) (*dnswire.Message, error) {
			wire, err := q.AppendPack(buf[:0])
			if err != nil {
				return nil, err
			}
			conn.SetDeadline(time.Now().Add(cfg.timeout))
			if _, err := conn.Write(wire); err != nil {
				return nil, err
			}
			for {
				n, err := conn.Read(buf)
				if err != nil {
					return nil, err
				}
				resp, err := dnswire.Unpack(buf[:n])
				if err != nil {
					continue // garbage or stray datagram; keep waiting
				}
				if resp.ID != q.ID {
					continue // straggler from a timed-out round
				}
				return resp, nil
			}
		}
		return exchange, func() { conn.Close() }, nil
	}
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// parseQnames splits and validates the comma-separated qname mix.
func parseQnames(s string) ([]dnswire.Name, error) {
	var mix []dnswire.Name
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := dnswire.NewName(part)
		if err != nil {
			return nil, fmt.Errorf("-qnames %q: %w", part, err)
		}
		mix = append(mix, n)
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("-qnames: empty mix")
	}
	return mix, nil
}

// parseQType maps the handful of types a load test plausibly asks for.
func parseQType(s string) (dnswire.Type, bool) {
	switch strings.ToUpper(s) {
	case "A":
		return dnswire.TypeA, true
	case "AAAA":
		return dnswire.TypeAAAA, true
	case "NS":
		return dnswire.TypeNS, true
	case "TXT":
		return dnswire.TypeTXT, true
	case "SOA":
		return dnswire.TypeSOA, true
	case "DNSKEY":
		return dnswire.TypeDNSKEY, true
	case "DS":
		return dnswire.TypeDS, true
	}
	return 0, false
}
