package main

import (
	"context"
	"net"
	"testing"
	"time"

	"github.com/extended-dns-errors/edelab/internal/dnswire"
	"github.com/extended-dns-errors/edelab/internal/netsim"
	"github.com/extended-dns-errors/edelab/internal/transport"
)

// TestHistQuantiles: a known distribution comes back with bounded relative
// error — the log-linear layout guarantees ~3% per bucket.
func TestHistQuantiles(t *testing.T) {
	h := newHist()
	// 1..1000µs uniform, in nanoseconds.
	for i := int64(1); i <= 1000; i++ {
		h.record(i * 1000)
	}
	checks := []struct {
		q    float64
		want int64 // ns
	}{
		{0.50, 500_000},
		{0.90, 900_000},
		{0.99, 990_000},
	}
	for _, c := range checks {
		got := h.quantile(c.q)
		lo, hi := c.want*95/100, c.want*105/100
		if got < lo || got > hi {
			t.Errorf("quantile(%.2f) = %d ns, want within 5%% of %d", c.q, got, c.want)
		}
	}
	if h.maxNS.Load() != 1_000_000 {
		t.Errorf("max = %d, want 1000000", h.maxNS.Load())
	}
	if empty := newHist(); empty.quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
}

func TestHistBucketRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, 31, 32, 33, 1000, 12345, 1 << 20, 1 << 40} {
		idx := bucketIndex(v)
		rep := bucketValue(idx)
		lo, hi := v-v/16-1, v+v/16+1
		if rep < lo || rep > hi {
			t.Errorf("value %d → bucket %d → representative %d (outside ±1/16)", v, idx, rep)
		}
	}
}

func TestParseQnames(t *testing.T) {
	mix, err := parseQnames("a.example, b.example.")
	if err != nil || len(mix) != 2 {
		t.Fatalf("parseQnames: %v (%d names)", err, len(mix))
	}
	if _, err := parseQnames(""); err == nil {
		t.Error("empty mix accepted")
	}
}

// TestRunAgainstLiveServer drives the whole closed loop against a real UDP
// front door for a fraction of a second and checks the summary is sane.
func TestRunAgainstLiveServer(t *testing.T) {
	handler := netsim.HandlerFunc(func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		r := q.Reply()
		r.RecursionAvailable = true
		r.AddEDE(3, "load test")
		return r, nil
	})
	srv := transport.NewServer(transport.Config{Handler: handler})
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.ServeUDP(ctx, conn)

	mix, _ := parseQnames("a.example,b.example")
	r := run(runConfig{
		server: conn.LocalAddr().String(), transport: "udp",
		concurrency: 2, duration: 300 * time.Millisecond, warmup: 50 * time.Millisecond,
		mix: mix, qtype: dnswire.TypeA, timeout: 2 * time.Second,
	})
	if r.Responses == 0 || r.AchievedQPS <= 0 {
		t.Fatalf("no throughput measured: %+v", r)
	}
	if r.Timeouts != 0 || r.Errors != 0 {
		t.Errorf("timeouts=%d errors=%d against a loopback echo server", r.Timeouts, r.Errors)
	}
	if r.WithEDE != r.Responses {
		t.Errorf("with-EDE = %d of %d responses, every reply carried EDE 3", r.WithEDE, r.Responses)
	}
	if r.LatencyUS.P50 <= 0 || r.LatencyUS.Max < r.LatencyUS.P50 {
		t.Errorf("implausible latency summary: %+v", r.LatencyUS)
	}
}

// TestRunPaced: with a 200 qps target the achieved rate must land well
// under the unpaced loopback rate — pacing actually throttles.
func TestRunPaced(t *testing.T) {
	handler := netsim.HandlerFunc(func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		return q.Reply(), nil
	})
	srv := transport.NewServer(transport.Config{Handler: handler})
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.ServeUDP(ctx, conn)

	mix, _ := parseQnames("a.example")
	r := run(runConfig{
		server: conn.LocalAddr().String(), transport: "udp", qps: 200,
		concurrency: 2, duration: 500 * time.Millisecond, warmup: 0,
		mix: mix, qtype: dnswire.TypeA, timeout: 2 * time.Second,
	})
	if r.AchievedQPS > 400 {
		t.Errorf("achieved %.0f qps with a 200 qps target; pacing is not throttling", r.AchievedQPS)
	}
	if r.Responses == 0 {
		t.Fatal("paced run produced no responses")
	}
}
