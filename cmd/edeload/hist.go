package main

import (
	"math/bits"
	"sync/atomic"
)

// hist is an HDR-style log-linear latency histogram over nanoseconds:
// values below 2^subBits land in exact unit buckets, and every power-of-two
// decade above that is split into 2^subBits linear sub-buckets, so the
// relative quantile error is bounded by 1/2^subBits (~3%) at every
// magnitude from nanoseconds to minutes. Recording is one atomic add —
// safe and cheap from every worker goroutine.
type hist struct {
	counts []atomic.Uint64
	total  atomic.Uint64
	maxNS  atomic.Int64
}

const (
	subBits    = 5
	subBuckets = 1 << subBits // 32 linear sub-buckets per decade
	decades    = 64 - subBits
)

func newHist() *hist {
	return &hist{counts: make([]atomic.Uint64, decades*subBuckets)}
}

// bucketIndex maps a value to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v)
	}
	msb := 63 - bits.LeadingZeros64(uint64(v))
	shift := msb - subBits
	idx := (shift+1)*subBuckets + int((v>>shift)&(subBuckets-1))
	if idx >= decades*subBuckets {
		idx = decades*subBuckets - 1
	}
	return idx
}

// bucketValue is the representative (midpoint) value of bucket idx.
func bucketValue(idx int) int64 {
	if idx < subBuckets {
		return int64(idx)
	}
	shift := idx/subBuckets - 1
	sub := int64(idx % subBuckets)
	lo := (int64(subBuckets) + sub) << shift
	return lo + (int64(1)<<shift)/2
}

func (h *hist) record(ns int64) {
	h.counts[bucketIndex(ns)].Add(1)
	h.total.Add(1)
	for {
		cur := h.maxNS.Load()
		if ns <= cur || h.maxNS.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// quantile returns the latency at quantile q (0 < q <= 1), or 0 when the
// histogram is empty.
func (h *hist) quantile(q float64) int64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen > rank {
			return bucketValue(i)
		}
	}
	return h.maxNS.Load()
}
